package churn

import (
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/sim"
	"mlbs/internal/topology"
)

func channelizedBase(t *testing.T, n, k int) core.Instance {
	t.Helper()
	dep, err := topology.Generate(topology.PaperConfig(n), 3)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Async(dep.G, dep.Source, dutycycle.NewUniform(n, 10, 3, 0), 0)
	in.Channels = k
	return in
}

func TestApplyPreservesChannels(t *testing.T) {
	base := channelizedBase(t, 60, 4)
	mutated, _, err := Apply(base, Delta{Events: []Event{
		{Kind: PositionJitter, Node: 5, X: 0.2, Y: 0.1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if mutated.Channels != 4 {
		t.Fatalf("Apply dropped the channel count: %d", mutated.Channels)
	}
}

// TestReplanChannelized repairs channelized base plans across a spread of
// deltas and checks the replanner's contract holds channel-aware: every
// repaired plan validates against the mutated channelized instance and
// replays collision-free.
func TestReplanChannelized(t *testing.T) {
	base := channelizedBase(t, 80, 4)
	res, err := core.NewGOPT(0).Schedule(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(base); err != nil {
		t.Fatal(err)
	}

	deltas := map[string]Delta{
		"jitter":    {Events: []Event{{Kind: PositionJitter, Node: 9, X: 0.5, Y: -0.4}}},
		"join":      {Events: []Event{{Kind: NodeJoin, X: 25, Y: 25}}},
		"fail":      {Events: []Event{{Kind: NodeFail, Node: 11}}},
		"composite": {Events: []Event{{Kind: NodeFail, Node: 4}, {Kind: NodeJoin, X: 10, Y: 40}, {Kind: PositionJitter, Node: 2, X: -0.3, Y: 0.2}}},
	}
	rp := NewReplanner(ReplanConfig{})
	replayer := sim.NewReplayer()
	for name, d := range deltas {
		out, err := rp.Replan(base, res.Schedule, d)
		if err != nil {
			if err == ErrSourceFailed || err == ErrDisconnected {
				continue
			}
			t.Fatalf("%s: %v", name, err)
		}
		if out.Instance.K() != 4 {
			t.Fatalf("%s: mutated instance lost channels", name)
		}
		if err := out.Result.Schedule.Validate(out.Instance); err != nil {
			t.Fatalf("%s (%s): repaired plan invalid: %v", name, out.Strategy, err)
		}
		rep, err := replayer.Replay(out.Instance, out.Result.Schedule)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Completed {
			t.Fatalf("%s (%s): repaired plan does not replay complete", name, out.Strategy)
		}
	}
}

// TestClassifyKeepsWholeSlots pins the slot-granularity rule: when one
// channel of a multi-channel slot is invalidated, the whole slot (and
// everything after it) leaves the kept prefix, never a partial slot whose
// coverage attribution would be stale.
func TestClassifyKeepsWholeSlots(t *testing.T) {
	base := channelizedBase(t, 80, 4)
	res, err := core.NewGOPT(0).Schedule(base)
	if err != nil {
		t.Fatal(err)
	}
	sched := res.Schedule
	// Find a multi-channel slot and fail one of its later-channel senders;
	// skip the test if this plan happens to be conflict-free.
	var failNode = -1
	for i := 1; i < len(sched.Advances); i++ {
		if sched.Advances[i].T == sched.Advances[i-1].T && sched.Advances[i].Channel > 0 {
			failNode = sched.Advances[i].Senders[0]
			break
		}
	}
	if failNode < 0 {
		t.Skip("plan has no multi-channel slot on this topology")
	}
	if failNode == base.Source {
		t.Skip("the multi-channel sender is the source")
	}
	rp := NewReplanner(ReplanConfig{})
	out, err := rp.Replan(base, sched, Delta{Events: []Event{{Kind: NodeFail, Node: failNode}}})
	if err != nil {
		if err == ErrDisconnected {
			t.Skip("failing the sender disconnects the topology")
		}
		t.Fatal(err)
	}
	for i := 1; i < out.KeptAdvances; i++ {
		a, b := out.Result.Schedule.Advances[i-1], out.Result.Schedule.Advances[i]
		if a.T == b.T && b.Channel <= a.Channel {
			t.Fatalf("kept prefix has malformed slot: %+v then %+v", a, b)
		}
	}
	if err := out.Result.Schedule.Validate(out.Instance); err != nil {
		t.Fatalf("repair after channel-sender failure invalid: %v", err)
	}
}
