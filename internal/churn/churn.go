// Package churn models dynamic topologies: typed topology events (node
// failure, node join, radius change, position jitter) applied as deltas to
// a base broadcast instance, plus the incremental re-planner that repairs
// a cached schedule after a delta instead of searching from scratch.
//
// The paper's schedules assume a static deployment; real deployments lose
// nodes to drained batteries and gain them when new motes are placed. A
// Delta is an ordered event sequence with a canonical encoding and a
// content digest, so a mutated instance content-addresses exactly: the
// serving layer keys repaired plans by (base digest, delta digest) and
// stores the repaired plan under the mutated instance's own digest, where
// later cold requests for the same topology find it.
//
// Node identity under failure uses swap-remove: when node u fails, the
// highest-numbered node takes ID u and the node set shrinks by one. IDs
// stay dense in [0, N) — the invariant every other layer assumes — while
// at most one surviving node is renumbered per failure, which keeps the
// blast radius of a small delta small.
package churn

import (
	"errors"
	"fmt"
	"math"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/graphio"
	"mlbs/internal/interference"
	"mlbs/internal/rng"
)

// Kind names a topology event type.
type Kind string

// The event kinds. The string values are wire format — changing one
// invalidates every stored delta and its digest.
const (
	// NodeFail removes a node. The last node is swap-moved into its slot.
	NodeFail Kind = "fail"
	// NodeJoin adds a node at (X, Y) with the next dense ID.
	NodeJoin Kind = "join"
	// RadiusChange sets the communication radius of every node to Radius.
	RadiusChange Kind = "radius"
	// PositionJitter displaces node Node by (X, Y).
	PositionJitter Kind = "jitter"
)

// Event is one topology change. Field use by kind:
//
//	fail    Node (the failing node)
//	join    X, Y (the new node's position)
//	radius  Radius (the new communication radius, > 0)
//	jitter  Node, X, Y (the displacement added to Node's position)
type Event struct {
	Kind   Kind         `json:"kind"`
	Node   graph.NodeID `json:"node,omitempty"`
	X      float64      `json:"x,omitempty"`
	Y      float64      `json:"y,omitempty"`
	Radius float64      `json:"radius,omitempty"`
}

// Validate reports a descriptive error for malformed events. Node bounds
// are checked at Apply time against the evolving node set.
func (ev Event) Validate() error {
	switch ev.Kind {
	case NodeFail:
		if ev.Node < 0 {
			return fmt.Errorf("churn: fail event with negative node %d", ev.Node)
		}
	case NodeJoin:
		if !isFinite(ev.X) || !isFinite(ev.Y) {
			return errors.New("churn: join event with non-finite position")
		}
	case RadiusChange:
		if !(ev.Radius > 0) || !isFinite(ev.Radius) {
			return fmt.Errorf("churn: radius event with radius %v", ev.Radius)
		}
	case PositionJitter:
		if ev.Node < 0 {
			return fmt.Errorf("churn: jitter event with negative node %d", ev.Node)
		}
		if !isFinite(ev.X) || !isFinite(ev.Y) {
			return errors.New("churn: jitter event with non-finite displacement")
		}
	default:
		return fmt.Errorf("churn: unknown event kind %q", ev.Kind)
	}
	return nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Delta is an ordered sequence of topology events. Events apply
// sequentially: a node ID in event i refers to the ID space after events
// 0..i−1 (swap-remove renumbering included).
type Delta struct {
	Events []Event `json:"events"`
}

// Validate checks every event.
func (d Delta) Validate() error {
	for i, ev := range d.Events {
		if err := ev.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Fails counts NodeFail events.
func (d Delta) Fails() int { return d.count(NodeFail) }

// Joins counts NodeJoin events.
func (d Delta) Joins() int { return d.count(NodeJoin) }

func (d Delta) count(k Kind) int {
	n := 0
	for _, ev := range d.Events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// Mapping relates node IDs of the base instance to node IDs of the
// mutated instance.
type Mapping struct {
	// FromBase[u] is the mutated ID of base node u, or -1 if u failed.
	FromBase []graph.NodeID
	// ToBase[v] is the base ID of mutated node v, or -1 for joined nodes.
	ToBase []graph.NodeID
}

// Identity reports whether the mapping renumbers nothing: same node count
// and every node keeps its ID.
func (m Mapping) Identity() bool {
	if len(m.FromBase) != len(m.ToBase) {
		return false
	}
	for u, v := range m.FromBase {
		if v != u {
			return false
		}
	}
	return true
}

// baseOf returns the base ID of mutated node v, or -1 when v is joined or
// outside the mapping.
func (m Mapping) baseOf(v graph.NodeID) graph.NodeID {
	if v < 0 || v >= len(m.ToBase) {
		return -1
	}
	return m.ToBase[v]
}

// Typed Apply failures the churn driver distinguishes from programming
// errors: the delta describes a world the broadcast cannot exist in.
var (
	// ErrSourceFailed reports a delta that fails the broadcast source.
	ErrSourceFailed = errors.New("churn: delta fails the broadcast source")
	// ErrDisconnected reports a delta that disconnects the network from
	// the source.
	ErrDisconnected = errors.New("churn: mutated topology is disconnected from the source")
	// ErrLastNode reports a delta that fails the final node.
	ErrLastNode = errors.New("churn: delta removes the last node")
)

// Apply mutates a copy of the base instance by the delta and returns the
// mutated instance plus the base→mutated ID mapping. The base instance is
// never modified.
//
// The base must be a unit-disk instance (positions + radius): churn
// semantics — who hears whom after a move — are geometric. The wake
// schedule is rebuilt for the mutated node set with RemapWake; the start
// slot and (mapped) pre-covered set carry over. Apply fails with
// ErrSourceFailed / ErrDisconnected / ErrLastNode when the delta breaks
// the broadcast, and with a descriptive error on out-of-range nodes.
func Apply(base core.Instance, d Delta) (core.Instance, Mapping, error) {
	if err := base.Validate(); err != nil {
		return core.Instance{}, Mapping{}, fmt.Errorf("churn: invalid base instance: %w", err)
	}
	if base.G.Radius() <= 0 {
		return core.Instance{}, Mapping{}, errors.New("churn: base instance is not a unit-disk graph")
	}
	if err := d.Validate(); err != nil {
		return core.Instance{}, Mapping{}, err
	}

	baseN := base.G.N()
	pos := append([]geom.Point(nil), base.G.Positions()...)
	radius := base.G.Radius()
	source := base.Source
	// toBase tracks, for every current slot, the base ID living there.
	toBase := make([]graph.NodeID, baseN)
	for i := range toBase {
		toBase[i] = i
	}

	for i, ev := range d.Events {
		switch ev.Kind {
		case NodeFail:
			u := ev.Node
			if u >= len(pos) {
				return core.Instance{}, Mapping{}, fmt.Errorf("churn: event %d fails node %d of %d", i, u, len(pos))
			}
			if u == source {
				return core.Instance{}, Mapping{}, ErrSourceFailed
			}
			if len(pos) == 1 {
				return core.Instance{}, Mapping{}, ErrLastNode
			}
			last := len(pos) - 1
			pos[u] = pos[last]
			toBase[u] = toBase[last]
			pos = pos[:last]
			toBase = toBase[:last]
			if source == last {
				source = u
			}
		case NodeJoin:
			// The same ceiling the graphio decoders enforce: a join-heavy
			// delta arriving over the wire must not inflate the quadratic
			// graph construction past what any decoder would accept.
			if len(pos) >= graphio.MaxWireNodes {
				return core.Instance{}, Mapping{}, fmt.Errorf("churn: event %d grows the network beyond %d nodes", i, graphio.MaxWireNodes)
			}
			pos = append(pos, geom.Point{X: ev.X, Y: ev.Y})
			toBase = append(toBase, -1)
		case RadiusChange:
			radius = ev.Radius
		case PositionJitter:
			u := ev.Node
			if u >= len(pos) {
				return core.Instance{}, Mapping{}, fmt.Errorf("churn: event %d jitters node %d of %d", i, u, len(pos))
			}
			pos[u].X += ev.X
			pos[u].Y += ev.Y
		}
	}

	m := Mapping{ToBase: toBase, FromBase: make([]graph.NodeID, baseN)}
	for i := range m.FromBase {
		m.FromBase[i] = -1
	}
	for v, u := range toBase {
		if u >= 0 {
			m.FromBase[u] = v
		}
	}

	g := graph.FromUDG(pos, radius)
	wake, err := RemapWake(base.Wake, m, g.N())
	if err != nil {
		return core.Instance{}, Mapping{}, err
	}
	var pre []graph.NodeID
	for _, u := range base.PreCovered {
		if v := m.FromBase[u]; v >= 0 {
			pre = append(pre, v)
		}
	}
	out := core.Instance{G: g, Source: source, Start: base.Start, Wake: wake, PreCovered: pre, Channels: base.Channels, SINR: remapSINR(base.SINR, m, g.N())}
	if _, connected := g.Eccentricity(source); !connected {
		return core.Instance{}, Mapping{}, ErrDisconnected
	}
	if err := out.Validate(); err != nil {
		return core.Instance{}, Mapping{}, fmt.Errorf("churn: mutated instance invalid: %w", err)
	}
	return out, m, nil
}

// remapSINR carries the base instance's SINR parameters through a delta:
// the scalar channel model survives unchanged, and per-node TX powers
// follow surviving nodes through swap-remove renumbering. Joined nodes
// get the default power 1. A nil model stays nil (protocol model).
func remapSINR(p *interference.SINRParams, m Mapping, newN int) *interference.SINRParams {
	if p == nil {
		return nil
	}
	out := &interference.SINRParams{Alpha: p.Alpha, Beta: p.Beta, Noise: p.Noise}
	if len(p.Power) == 0 {
		return out
	}
	out.Power = make([]float64, newN)
	for i := range out.Power {
		out.Power[i] = 1
	}
	for v, u := range m.ToBase {
		if u >= 0 && v < newN {
			out.Power[v] = p.Power[u]
		}
	}
	return out
}

// RemapWake rebuilds a wake schedule for the mutated node set, preserving
// each surviving node's wake pattern where the schedule family allows it:
//
//   - AlwaysAwake: trivially preserved.
//   - Fixed / PeriodicPhase: slot lists / phases follow the node through
//     renumbering; joined nodes get a deterministic phase derived from
//     their mutated ID, so the result is reproducible.
//   - Uniform: rebuilt with the same master seed and rate for the new node
//     count. Per-node sequences are seeded by node *index*, so nodes that
//     keep their ID keep their wake pattern; the one node renumbered per
//     failure (and every joined node) draws a fresh sequence. This is the
//     price of keeping the schedule encodable as its compact (seed, n, r)
//     form — the re-planner re-checks wake feasibility per advance, so
//     correctness never depends on preservation, only incrementality does.
func RemapWake(base dutycycle.Schedule, m Mapping, newN int) (dutycycle.Schedule, error) {
	switch w := base.(type) {
	case dutycycle.AlwaysAwake:
		return dutycycle.AlwaysAwake{Nodes: newN}, nil
	case *dutycycle.Uniform:
		return dutycycle.NewUniform(newN, w.Rate(), w.MasterSeed(), w.Cycles()), nil
	case *dutycycle.PeriodicPhase:
		r := w.Rate()
		old := w.Phases()
		phases := make([]int, newN)
		for v := 0; v < newN; v++ {
			if u := m.baseOf(v); u >= 0 && u < len(old) {
				phases[v] = old[u]
			} else {
				phases[v] = joinPhase(v, r)
			}
		}
		return dutycycle.NewPeriodicPhase(r, phases), nil
	case *dutycycle.Fixed:
		old := w.SlotLists()
		slots := make([][]int, newN)
		for v := 0; v < newN; v++ {
			if u := m.baseOf(v); u >= 0 && u < len(old) {
				slots[v] = old[u]
			} else {
				slots[v] = []int{joinPhase(v, w.Period())}
			}
		}
		return dutycycle.NewFixed(w.Period(), w.Rate(), slots), nil
	default:
		return nil, fmt.Errorf("churn: wake schedule %T cannot be remapped", base)
	}
}

// joinPhase derives a deterministic wake phase in [0, period) for a
// joined node from its mutated ID.
func joinPhase(v, period int) int {
	state := uint64(v)*0x9e3779b97f4a7c15 + 0x636875726e // "churn"
	return int(rng.SplitMix64(&state) % uint64(period))
}
