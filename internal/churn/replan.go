package churn

import (
	"errors"
	"fmt"
	"slices"

	"mlbs/internal/bitset"
	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
)

// Strategy names how a repaired plan was obtained.
type Strategy string

const (
	// StrategyPrefix: the surviving prefix of the base schedule already
	// covers the mutated node set; no search ran.
	StrategyPrefix Strategy = "prefix"
	// StrategyIncremental: the surviving prefix was kept and the core
	// engine searched only the stranded remainder, with the prefix's
	// coverage as pre-covered state.
	StrategyIncremental Strategy = "incremental"
	// StrategyCold: the delta invalidated too much (or repair failed);
	// the engine searched the mutated instance from scratch.
	StrategyCold Strategy = "cold"
)

// DefaultMinKeptFrac is the incremental/cold decision boundary: when the
// surviving prefix is shorter than this fraction of the base schedule's
// advances, the classification has lost most of the plan's structure and a
// cold search is usually as fast as a residual one.
const DefaultMinKeptFrac = 0.25

// ReplanConfig tunes a Replanner.
type ReplanConfig struct {
	// Scheduler runs the residual and cold searches. Default: a reusable
	// G-OPT engine with the default budget. The Replanner inherits its
	// concurrency contract — a Replanner built on an Engine is
	// single-goroutine, like the engine itself.
	Scheduler core.Scheduler
	// MinKeptFrac is the incremental/cold boundary (see
	// DefaultMinKeptFrac); 0 selects the default. Negative values force a
	// cold search on every delta — prefix reuse included — the ablation
	// switch for measuring what incrementality buys.
	MinKeptFrac float64
}

// ReplanResult is a repaired plan plus the classification that produced it.
type ReplanResult struct {
	// Result holds the repaired (validated) plan for the mutated instance.
	// It is freshly allocated per call and shares no memory with the base
	// schedule: callers may cache it as an immutable value.
	Result *core.Result
	// Instance is the mutated instance the plan answers.
	Instance core.Instance
	// Mapping relates base node IDs to mutated node IDs.
	Mapping Mapping
	// Strategy says how the plan was obtained.
	Strategy Strategy
	// KeptAdvances / BaseAdvances quantify the blast radius: how much of
	// the base schedule survived classification.
	KeptAdvances int
	BaseAdvances int
}

// Replanner repairs cached schedules after topology deltas. Its coverage
// bitsets and the underlying search engine's arenas are reused across
// calls; like a core.Engine it is NOT safe for concurrent use — the
// serving layer gives each worker goroutine its own.
type Replanner struct {
	sched           core.Scheduler
	minKeptFrac     float64
	w, got          bitset.Set
	slotCov, slotTx bitset.Set // multi-channel slot scratch (see classify)

	// Interference oracle of the mutated instance: prefix classification
	// must reject advances under the same model the scheduler plans with,
	// so a kept prefix stays legal under SINR too. Rebound per classify.
	ib     interference.Binder
	oracle interference.Oracle
}

// NewReplanner builds a replanner; see ReplanConfig for defaults.
func NewReplanner(cfg ReplanConfig) *Replanner {
	if cfg.Scheduler == nil {
		cfg.Scheduler = core.NewGOPT(0).NewEngine()
	}
	if cfg.MinKeptFrac == 0 {
		cfg.MinKeptFrac = DefaultMinKeptFrac
	}
	return &Replanner{sched: cfg.Scheduler, minKeptFrac: cfg.MinKeptFrac}
}

// Replan applies the delta to the base instance and repairs basePlan for
// the mutated topology:
//
//  1. Classify the blast radius: walk the base schedule in time order,
//     remapping senders and re-deriving coverage against the mutated
//     graph; the walk stops at the first advance any model constraint
//     rejects (failed sender, sender renumbered out of its wake slots,
//     new conflict at an uncovered node, nothing left to cover).
//  2. If the surviving prefix already covers every live node, it IS the
//     repaired plan (StrategyPrefix).
//  3. Otherwise run the engine over the stranded remainder only: the
//     mutated instance with the prefix's coverage as pre-covered state and
//     the first slot after the prefix as start (StrategyIncremental) — or
//     from scratch when the prefix kept less than MinKeptFrac of the base
//     advances (StrategyCold).
//
// Every returned plan has been validated against the mutated instance;
// an incremental repair that fails validation falls back to cold search
// rather than returning a bad plan.
func (rp *Replanner) Replan(base core.Instance, basePlan *core.Schedule, d Delta) (*ReplanResult, error) {
	if basePlan == nil {
		return nil, errors.New("churn: nil base schedule")
	}
	mutated, m, err := Apply(base, d)
	if err != nil {
		return nil, err
	}
	kept := rp.classify(mutated, basePlan, m)
	out := &ReplanResult{
		Instance:     mutated,
		Mapping:      m,
		KeptAdvances: len(kept),
		BaseAdvances: len(basePlan.Advances),
	}

	n := mutated.G.N()
	if rp.minKeptFrac >= 0 && rp.w.Len() == n {
		sched := &core.Schedule{Source: mutated.Source, Start: mutated.Start, Advances: kept}
		if err := sched.Validate(mutated); err == nil {
			out.Strategy = StrategyPrefix
			out.Result = &core.Result{
				Scheduler: "replan-prefix(" + rp.sched.Name() + ")",
				Schedule:  sched,
				PA:        sched.PA(),
			}
			return out, nil
		}
		// A prefix that fails validation is a classification bug; recover
		// through the cold path instead of surfacing a broken plan.
		kept = nil
	}

	incremental := rp.minKeptFrac >= 0 && len(kept) > 0 &&
		float64(len(kept)) >= rp.minKeptFrac*float64(len(basePlan.Advances))
	if incremental {
		residual := mutated
		residual.Start = kept[len(kept)-1].T + 1
		residual.PreCovered = rp.preCoveredList(mutated.Source)
		res, err := rp.sched.Schedule(residual)
		if err == nil {
			sched := &core.Schedule{
				Source:   mutated.Source,
				Start:    mutated.Start,
				Advances: append(slices.Clip(kept), res.Schedule.Advances...),
			}
			if err := sched.Validate(mutated); err == nil {
				out.Strategy = StrategyIncremental
				out.Result = &core.Result{
					Scheduler: "replan-incremental(" + rp.sched.Name() + ")",
					Schedule:  sched,
					PA:        sched.PA(),
					Stats:     res.Stats,
				}
				return out, nil
			}
		}
		// Residual search failed or produced an invalid composite — the
		// cold path below always works on a valid mutated instance.
	}

	res, err := rp.sched.Schedule(mutated)
	if err != nil {
		return nil, fmt.Errorf("churn: cold search on mutated instance: %w", err)
	}
	out.Strategy = StrategyCold
	out.KeptAdvances = 0
	// Cold output is the engine's own result, untouched — scheduler name
	// included — so a cold repair is byte-for-byte what a direct search
	// of the mutated instance produces (the serving layer relies on this
	// to publish cold repairs into the plan cache).
	out.Result = res
	return out, nil
}

// classify walks the base schedule against the mutated instance, returning
// the longest valid prefix (with coverage re-derived per advance) and
// leaving the prefix's coverage in rp.w. On a multi-channel base schedule
// the walk proceeds slot by slot: a slot's advances (one per channel)
// survive or fall together, so the kept prefix is always a whole number of
// slots and its per-channel coverage attribution stays canonical.
func (rp *Replanner) classify(mutated core.Instance, basePlan *core.Schedule, m Mapping) []core.Advance {
	n := mutated.G.N()
	k := mutated.K()
	rp.oracle = mutated.Oracle(&rp.ib)
	if rp.w.Capacity() < n {
		rp.w = bitset.New(n)
		rp.got = bitset.New(n)
		rp.slotCov = bitset.New(n)
		rp.slotTx = bitset.New(n)
	} else {
		rp.w.Clear()
		rp.got.Clear()
	}
	rp.w.Add(mutated.Source)
	for _, u := range mutated.PreCovered {
		rp.w.Add(u)
	}

	var kept []core.Advance
	prev := mutated.Start - 1
	advs := basePlan.Advances
	for gi := 0; gi < len(advs) && rp.w.Len() < n; {
		t := advs[gi].T
		if t <= prev {
			break
		}
		end := gi
		for end < len(advs) && advs[end].T == t {
			end++
		}
		group := advs[gi:end]
		if len(group) > k {
			break
		}
		slotAdvances, ok := rp.classifySlot(mutated, m, t, k, group)
		if !ok {
			break
		}
		kept = append(kept, slotAdvances...)
		rp.w.UnionWith(rp.slotCov)
		prev = t
		gi = end
	}
	return kept
}

// classifySlot remaps and re-validates one slot's advance group against
// the mutated instance and rp.w (the coverage before the slot). On
// success it returns the rebuilt advances and leaves their joint coverage
// in rp.slotCov; on any model violation it reports ok=false and the
// prefix ends before this slot.
func (rp *Replanner) classifySlot(mutated core.Instance, m Mapping, t, k int, group []core.Advance) ([]core.Advance, bool) {
	rp.slotCov.Clear()
	rp.slotTx.Clear()
	out := make([]core.Advance, 0, len(group))
	prevCh := -1
	for _, adv := range group {
		if adv.Channel <= prevCh || adv.Channel >= k {
			return nil, false
		}
		prevCh = adv.Channel
		senders := make([]graph.NodeID, 0, len(adv.Senders))
		for _, u := range adv.Senders {
			if u < 0 || u >= len(m.FromBase) {
				return nil, false
			}
			v := m.FromBase[u]
			if v < 0 {
				return nil, false // sender failed
			}
			senders = append(senders, v)
		}
		slices.Sort(senders)
		for _, v := range senders {
			if !rp.w.Has(v) || !mutated.Wake.Awake(v, t) || !mutated.G.Nbr(v).AnyDifference(rp.w) || rp.slotTx.Has(v) {
				return nil, false
			}
			rp.slotTx.Add(v)
		}
		if !rp.oracle.ConflictFree(rp.w, senders) {
			return nil, false
		}
		rp.got.Clear()
		for _, v := range senders {
			rp.got.UnionWith(mutated.G.Nbr(v))
		}
		rp.got.DifferenceWith(rp.w)
		rp.got.DifferenceWith(rp.slotCov)
		if rp.got.Empty() {
			return nil, false // the advance covers nothing new on the mutated graph
		}
		covered := rp.got.AppendMembers(make([]graph.NodeID, 0, rp.got.Len()))
		out = append(out, core.Advance{T: t, Channel: adv.Channel, Senders: senders, Covered: covered})
		rp.slotCov.UnionWith(rp.got)
	}
	return out, true
}

// preCoveredList snapshots rp.w minus the source as a fresh slice — the
// pre-covered state of the residual search.
func (rp *Replanner) preCoveredList(source graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, rp.w.Len()-1)
	rp.w.ForEach(func(v int) {
		if v != source {
			out = append(out, v)
		}
	})
	return out
}
