package churn

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden churn wire-format files")

// goldenDelta is a fixed delta exercising every event kind.
func goldenDelta() Delta {
	return Delta{Events: []Event{
		{Kind: NodeFail, Node: 7},
		{Kind: NodeJoin, X: 12.5, Y: 33.25},
		{Kind: RadiusChange, Radius: 9.5},
		{Kind: PositionJitter, Node: 3, X: -0.75, Y: 1.5},
	}}
}

// goldenDeltaDigest pins the canonical delta digest. If this test fails,
// the digest encoding changed: every replan cache key and stored delta in
// the wild is invalidated. Bump deltaMagic and update this constant only
// as a conscious decision.
const goldenDeltaDigest = "7e22b6ace9c2b3fd263590f537287063219e58d5de94f3274a300cd8a17243d0"

func TestDeltaDigestGolden(t *testing.T) {
	d, err := DeltaDigest(goldenDelta())
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != goldenDeltaDigest {
		t.Fatalf("delta digest drifted:\n got  %s\n want %s", d, goldenDeltaDigest)
	}
}

func TestDeltaDigestDiscriminates(t *testing.T) {
	base := goldenDelta()
	d0, _ := DeltaDigest(base)
	// Reordering events must change the digest: deltas are programs.
	swapped := Delta{Events: []Event{base.Events[1], base.Events[0], base.Events[2], base.Events[3]}}
	d1, _ := DeltaDigest(swapped)
	if d0 == d1 {
		t.Fatal("event order does not influence the digest")
	}
	tweaked := goldenDelta()
	tweaked.Events[3].X += 1e-12
	d2, _ := DeltaDigest(tweaked)
	if d0 == d2 {
		t.Fatal("jitter displacement does not influence the digest")
	}
	// Fields a kind does not read must NOT influence the digest: two wire
	// forms of the same logical delta content-address identically.
	junk := goldenDelta()
	junk.Events[0].X = 42.5      // fail reads only Node
	junk.Events[1].Node = 9      // join reads only X, Y
	junk.Events[2].Node = 3      // radius reads only Radius
	junk.Events[3].Radius = 99.9 // jitter reads Node, X, Y
	d3, err := DeltaDigest(junk)
	if err != nil {
		t.Fatal(err)
	}
	if d0 != d3 {
		t.Fatal("unused event fields split the content address")
	}
}

func checkGoldenFile(t *testing.T, name string, data []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(data), bytes.TrimSpace(want)) {
		t.Fatalf("%s wire format drifted:\n%s", name, data)
	}
}

func TestDeltaWireFormatGolden(t *testing.T) {
	data, err := EncodeDelta(goldenDelta())
	if err != nil {
		t.Fatal(err)
	}
	checkGoldenFile(t, "golden_delta.json", data)
	got, err := DecodeDelta(data)
	if err != nil {
		t.Fatal(err)
	}
	d1, _ := DeltaDigest(goldenDelta())
	d2, err := DeltaDigest(got)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("delta round trip changed the digest: %s → %s", d1, d2)
	}
}

func TestTraceWireFormatGolden(t *testing.T) {
	in := paperSync(t, 50, 2)
	tr, err := GenerateTrace(in, TraceConfig{
		HorizonHours: 1, SlotsPerHour: 10_000,
		FailsPerHour: 4, JoinsPerHour: 2, JittersPerHour: 6,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("trace generated no events")
	}
	data, err := EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	checkGoldenFile(t, "golden_trace.json", data)
	got, err := DecodeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != tr.Seed || got.BaseDigest != tr.BaseDigest || len(got.Events) != len(tr.Events) {
		t.Fatalf("trace round trip lost data: %+v", got)
	}
	// Every decoded event must replay cleanly against the base instance.
	if _, _, err := Apply(in, got.Delta(0, len(got.Events))); err != nil {
		t.Fatalf("decoded trace does not apply: %v", err)
	}
}

func TestDecodeDeltaRejectsBadInput(t *testing.T) {
	for name, data := range map[string]string{
		"garbage":      "not json",
		"bad-version":  `{"version":99,"events":[]}`,
		"bad-kind":     `{"version":1,"events":[{"kind":"warp"}]}`,
		"bad-radius":   `{"version":1,"events":[{"kind":"radius","radius":-1}]}`,
		"nan-position": `{"version":1,"events":[{"kind":"join","x":1e999}]}`,
		"neg-node":     `{"version":1,"events":[{"kind":"fail","node":-3}]}`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeDelta([]byte(data)); err == nil {
				t.Fatalf("accepted %q", data)
			}
		})
	}
}

func TestDecodeTraceRejectsDisorder(t *testing.T) {
	bad := `{"version":1,"seed":1,"base_digest":"x","config":{},"events":[` +
		`{"at":10,"kind":"join","x":1,"y":1},{"at":5,"kind":"join","x":2,"y":2}]}`
	if _, err := DecodeTrace([]byte(bad)); err == nil {
		t.Fatal("out-of-order trace accepted")
	}
}
