package churn

import (
	"errors"
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/graphio"
	"mlbs/internal/topology"
)

// lineInstance is a 5-node line 0–1–2–3–4 at unit spacing, radius 1.25,
// source 0, synchronous.
func lineInstance() core.Instance {
	pos := []geom.Point{{X: 0}, {X: 1}, {X: 2}, {X: 3}, {X: 4}}
	return core.Sync(graph.FromUDG(pos, 1.25), 0)
}

func paperSync(t testing.TB, n int, seed uint64) core.Instance {
	t.Helper()
	dep, err := topology.Generate(topology.PaperConfig(n), seed)
	if err != nil {
		t.Fatal(err)
	}
	return core.Sync(dep.G, dep.Source)
}

func paperDuty(t testing.TB, n int, seed uint64, r int) core.Instance {
	t.Helper()
	dep, err := topology.Generate(topology.PaperConfig(n), seed)
	if err != nil {
		t.Fatal(err)
	}
	return core.Async(dep.G, dep.Source, dutycycle.NewUniform(n, r, seed^0xA5, 0), 0)
}

func TestApplySwapRemove(t *testing.T) {
	in := lineInstance()
	// Fail node 2 — disconnects the line 0-1 | 3-4? No: swap-remove moves
	// node 4 (pos X=4) into slot 2... which leaves a hole. Use a denser
	// radius so the graph survives: rebuild with radius 2.5.
	in = core.Sync(graph.FromUDG(in.G.Positions(), 2.5), 0)
	out, m, err := Apply(in, Delta{Events: []Event{{Kind: NodeFail, Node: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if out.G.N() != 4 {
		t.Fatalf("node count %d after one failure of 5", out.G.N())
	}
	// Node 4 moved into slot 2.
	if got := out.G.Pos(2); got.X != 4 {
		t.Fatalf("swap-remove did not move the last node: pos[2] = %+v", got)
	}
	if m.FromBase[2] != -1 || m.FromBase[4] != 2 || m.ToBase[2] != 4 {
		t.Fatalf("mapping wrong: %+v", m)
	}
	for _, u := range []int{0, 1, 3} {
		if m.FromBase[u] != u {
			t.Fatalf("node %d renumbered needlessly: %+v", u, m)
		}
	}
}

func TestApplyJoinAndJitterAndRadius(t *testing.T) {
	in := lineInstance()
	out, m, err := Apply(in, Delta{Events: []Event{
		{Kind: NodeJoin, X: 2, Y: 1},
		{Kind: PositionJitter, Node: 1, X: 0.25, Y: 0},
		{Kind: RadiusChange, Radius: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if out.G.N() != 6 {
		t.Fatalf("node count %d after a join on 5", out.G.N())
	}
	if m.ToBase[5] != -1 {
		t.Fatalf("joined node mapped to base node %d", m.ToBase[5])
	}
	if got := out.G.Pos(1); got.X != 1.25 {
		t.Fatalf("jitter not applied: pos[1] = %+v", got)
	}
	if out.G.Radius() != 2 {
		t.Fatalf("radius change not applied: %v", out.G.Radius())
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplySourceTracksSwap(t *testing.T) {
	pos := []geom.Point{{X: 0}, {X: 1}, {X: 2}}
	in := core.Sync(graph.FromUDG(pos, 2.5), 2) // source is the last node
	out, _, err := Apply(in, Delta{Events: []Event{{Kind: NodeFail, Node: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Source != 0 {
		t.Fatalf("source not tracked through swap: %d", out.Source)
	}
	if out.G.Pos(out.Source).X != 2 {
		t.Fatalf("source position wrong after swap: %+v", out.G.Pos(out.Source))
	}
}

func TestApplyErrors(t *testing.T) {
	in := lineInstance()
	cases := []struct {
		name string
		d    Delta
		want error
	}{
		{"source-fail", Delta{Events: []Event{{Kind: NodeFail, Node: 0}}}, ErrSourceFailed},
		{"disconnect", Delta{Events: []Event{{Kind: NodeFail, Node: 2}}}, ErrDisconnected},
		{"radius-shrink", Delta{Events: []Event{{Kind: RadiusChange, Radius: 0.5}}}, ErrDisconnected},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Apply(in, tc.d); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
	if _, _, err := Apply(in, Delta{Events: []Event{{Kind: NodeFail, Node: 99}}}); err == nil {
		t.Fatal("out-of-range fail accepted")
	}
	if _, _, err := Apply(in, Delta{Events: []Event{{Kind: "warp"}}}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	abstract := core.Sync(graph.NewBuilder(2, nil).AddEdge(0, 1).Build(), 0)
	if _, _, err := Apply(abstract, Delta{}); err == nil {
		t.Fatal("abstract graph accepted")
	}
}

func TestApplyEmptyDeltaIsIdentity(t *testing.T) {
	in := paperSync(t, 60, 7)
	out, m, err := Apply(in, Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Identity() {
		t.Fatalf("empty delta renumbered nodes: %+v", m)
	}
	d1, err := graphio.InstanceDigest(in)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := graphio.InstanceDigest(out)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("empty delta changed the instance digest: %s → %s", d1, d2)
	}
}

// Mutated instances must content-address like natively built ones: the
// digest of Apply's output equals the digest of an instance built directly
// from the mutated geometry.
func TestMutatedInstanceContentAddresses(t *testing.T) {
	in := paperSync(t, 50, 3)
	out, _, err := Apply(in, Delta{Events: []Event{
		{Kind: NodeJoin, X: 25, Y: 25},
		{Kind: PositionJitter, Node: 4, X: 0.5, Y: -0.5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := core.Sync(graph.FromUDG(out.G.Positions(), out.G.Radius()), out.Source)
	d1, err := graphio.InstanceDigest(out)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := graphio.InstanceDigest(rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("mutated instance digests differently from a native build: %s vs %s", d1, d2)
	}
}

func TestRemapWakePreservation(t *testing.T) {
	in := paperDuty(t, 40, 5, 8)
	// Fail a high-degree non-source node; nodes other than the swapped one
	// must keep their wake pattern.
	victim := (in.Source + 1) % in.G.N()
	out, m, err := Apply(in, Delta{Events: []Event{{Kind: NodeFail, Node: victim}}})
	if err != nil {
		t.Skipf("victim disconnects this deployment: %v", err)
	}
	moved := m.FromBase[in.G.N()-1] // the renumbered node (or -1 if victim was last)
	for u := 0; u < in.G.N(); u++ {
		v := m.FromBase[u]
		if v < 0 || v == moved {
			continue
		}
		for tt := 0; tt < 64; tt++ {
			if in.Wake.Awake(u, tt) != out.Wake.Awake(v, tt) {
				t.Fatalf("node %d→%d wake pattern changed at t=%d", u, v, tt)
			}
		}
	}
}

func TestRemapWakeFamilies(t *testing.T) {
	m := Mapping{ToBase: []int{0, 2, -1}, FromBase: []int{0, -1, 1}}
	fixed := dutycycle.NewFixed(6, 3, [][]int{{0, 3}, {1}, {2, 5}})
	w, err := RemapWake(fixed, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := w.(*dutycycle.Fixed)
	if got := f.SlotLists(); got[0][0] != 0 || got[1][0] != 2 || len(got[2]) != 1 {
		t.Fatalf("fixed remap wrong: %v", got)
	}
	phase := dutycycle.NewPeriodicPhase(4, []int{1, 2, 3})
	w, err = RemapWake(phase, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := w.(*dutycycle.PeriodicPhase)
	if got := p.Phases(); got[0] != 1 || got[1] != 3 {
		t.Fatalf("phase remap wrong: %v", got)
	}
	if _, err := RemapWake(nil, m, 3); err == nil {
		t.Fatal("nil wake accepted")
	}
}

// A join-heavy delta must not grow the network past the wire ceiling —
// Apply is reachable from POST /v1/replan, and graph construction is
// quadratic in the node count.
func TestApplyCapsJoinGrowth(t *testing.T) {
	in := lineInstance()
	events := make([]Event, 0, graphio.MaxWireNodes)
	for i := 0; i < graphio.MaxWireNodes; i++ {
		events = append(events, Event{Kind: NodeJoin, X: float64(i % 5), Y: 0.5})
	}
	_, _, err := Apply(in, Delta{Events: events})
	if err == nil {
		t.Fatalf("delta growing the network to %d+ nodes accepted", graphio.MaxWireNodes)
	}
}
