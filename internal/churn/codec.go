package churn

import (
	"encoding/json"
	"fmt"

	"mlbs/internal/graphio"
)

// codecVersion guards the delta/trace wire format.
const codecVersion = 1

// maxWireEvents bounds a decoded delta or trace so arbitrary bytes cannot
// demand unbounded work downstream; real deltas are orders of magnitude
// smaller.
const maxWireEvents = 1 << 20

// deltaJSON is the stored form of a Delta — the schema POST /v1/replan
// accepts and churn traces embed.
type deltaJSON struct {
	Version int     `json:"version"`
	Events  []Event `json:"events"`
}

// EncodeDelta serializes a delta.
func EncodeDelta(d Delta) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(deltaJSON{Version: codecVersion, Events: d.Events}, "", " ")
}

// DecodeDelta rebuilds a delta from EncodeDelta output, validating every
// event. It never panics on arbitrary bytes.
func DecodeDelta(data []byte) (Delta, error) {
	var st deltaJSON
	if err := json.Unmarshal(data, &st); err != nil {
		return Delta{}, fmt.Errorf("churn: %w", err)
	}
	if st.Version != codecVersion {
		return Delta{}, fmt.Errorf("churn: unsupported delta version %d", st.Version)
	}
	if len(st.Events) > maxWireEvents {
		return Delta{}, fmt.Errorf("churn: delta has %d events (limit %d)", len(st.Events), maxWireEvents)
	}
	d := Delta{Events: st.Events}
	if err := d.Validate(); err != nil {
		return Delta{}, err
	}
	return d, nil
}

// deltaMagic versions the canonical digest encoding; bump it whenever the
// byte layout below changes, so stale cache keys can never alias new ones.
const deltaMagic = "mlbs-delta-v1"

// DeltaDigest computes the content address of a delta: a SHA-256 over a
// canonical binary encoding of the event sequence. Equal deltas digest
// equally across processes and architectures; event order matters (deltas
// are sequential programs, not sets), and only the fields an event's kind
// actually reads are hashed, so junk in unused fields cannot split the
// content address of semantically identical deltas. The serving layer
// keys repaired plans by (base instance digest, delta digest).
func DeltaDigest(d Delta) (graphio.Digest, error) {
	if err := d.Validate(); err != nil {
		return graphio.Digest{}, err
	}
	w := graphio.NewDigestWriter(deltaMagic)
	w.I(len(d.Events))
	for _, ev := range d.Events {
		w.S(string(ev.Kind))
		switch ev.Kind {
		case NodeFail:
			w.I(ev.Node)
		case NodeJoin:
			w.F(ev.X)
			w.F(ev.Y)
		case RadiusChange:
			w.F(ev.Radius)
		case PositionJitter:
			w.I(ev.Node)
			w.F(ev.X)
			w.F(ev.Y)
		}
	}
	return w.Sum(), nil
}
