package churn

import (
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/rng"
	"mlbs/internal/sim"
)

// TestReplanProperty is the core invariant of the churn engine, pinned
// independently of any golden file: for random instances and random event
// sequences, every repaired schedule must (a) pass Instance.Validate,
// (b) replay collision-free to completion, and (c) cover exactly the live
// node set of the mutated instance. The delta evolves the instance step by
// step, so repairs compound: each repaired plan becomes the next base.
func TestReplanProperty(t *testing.T) {
	cases := []struct {
		name string
		mk   func(t *testing.T, seed uint64) core.Instance
	}{
		{"sync", func(t *testing.T, seed uint64) core.Instance { return paperSync(t, 50+int(seed%3)*15, seed) }},
		{"duty", func(t *testing.T, seed uint64) core.Instance { return paperDuty(t, 40+int(seed%2)*20, seed, 4) }},
	}
	trials := 6
	eventsPer := 8
	if testing.Short() {
		trials, eventsPer = 2, 4
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rp := NewReplanner(ReplanConfig{})
			replayer := sim.NewReplayer()
			for trial := 0; trial < trials; trial++ {
				seed := uint64(trial)*7 + 1
				in := tc.mk(t, seed)
				plan := basePlanFor(t, in)
				sched := plan.Schedule
				r := rng.New(seed ^ 0xC0FFEE)
				applied := 0
				for step := 0; applied < eventsPer && step < eventsPer*maxEventTries; step++ {
					ev := randomEvent(r, in)
					rr, err := rp.Replan(in, sched, Delta{Events: []Event{ev}})
					if err != nil {
						continue // disconnecting / source-killing event: redraw
					}
					applied++
					// (a) model validity.
					if err := rr.Result.Schedule.Validate(rr.Instance); err != nil {
						t.Fatalf("trial %d step %d (%s, %+v): invalid repaired schedule: %v",
							trial, step, rr.Strategy, ev, err)
					}
					// (b) collision-free replay + (c) exact live-node coverage.
					rep, err := replayer.Replay(rr.Instance, rr.Result.Schedule)
					if err != nil {
						t.Fatalf("trial %d step %d: replay error: %v", trial, step, err)
					}
					if !rep.Completed {
						t.Fatalf("trial %d step %d (%s): replay incomplete or collided", trial, step, rr.Strategy)
					}
					// (c) independently of the replayer: the schedule's own
					// coverage — source ∪ pre-covered ∪ advance coverage —
					// must be exactly the live node set, each node once.
					n := rr.Instance.G.N()
					seen := make([]bool, n)
					seen[rr.Instance.Source] = true
					for _, u := range rr.Instance.PreCovered {
						seen[u] = true
					}
					for _, adv := range rr.Result.Schedule.Advances {
						for _, u := range adv.Covered {
							if u < 0 || u >= n || seen[u] {
								t.Fatalf("trial %d step %d: node %d covered twice or out of range", trial, step, u)
							}
							seen[u] = true
						}
					}
					for u, ok := range seen {
						if !ok {
							t.Fatalf("trial %d step %d: live node %d never covered", trial, step, u)
						}
					}
					in, sched = rr.Instance, rr.Result.Schedule
				}
				if applied == 0 {
					t.Fatalf("trial %d: no applicable events drawn", trial)
				}
			}
		})
	}
}

// randomEvent draws one arbitrary event against the current instance —
// unlike the trace generator it happily proposes invalid events; the
// property test exercises Replan's error paths with them.
func randomEvent(r *rng.Source, in core.Instance) Event {
	n := in.G.N()
	switch r.Intn(4) {
	case 0:
		return Event{Kind: NodeFail, Node: r.Intn(n)}
	case 1:
		p := in.G.Pos(r.Intn(n))
		return Event{Kind: NodeJoin, X: p.X + r.InRange(-3, 3), Y: p.Y + r.InRange(-3, 3)}
	case 2:
		// Mild radius wobble: ±10%.
		return Event{Kind: RadiusChange, Radius: in.G.Radius() * r.InRange(0.9, 1.1)}
	default:
		return Event{Kind: PositionJitter, Node: r.Intn(n), X: r.NormFloat64(), Y: r.NormFloat64()}
	}
}
