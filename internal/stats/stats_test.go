package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %f, want 5", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %f, want %f", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %f/%f", s.Min(), s.Max())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Var() != 0 || s.CI95() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.AddInt(7)
	if s.Mean() != 7 || s.Var() != 0 || s.CI95() != 0 {
		t.Fatalf("single obs: mean=%f var=%f ci=%f", s.Mean(), s.Var(), s.CI95())
	}
}

func TestCI95KnownCase(t *testing.T) {
	// n=2, values 0 and 2: mean 1, std √2, CI = 12.706·√2/√2 = 12.706.
	var s Sample
	s.Add(0)
	s.Add(2)
	if math.Abs(s.CI95()-12.706) > 1e-9 {
		t.Fatalf("CI95 = %f, want 12.706", s.CI95())
	}
}

func TestCI95LargeN(t *testing.T) {
	var s Sample
	for i := 0; i < 100; i++ {
		s.Add(float64(i % 2))
	}
	// df=99 ⇒ normal quantile 1.96; std ≈ 0.5025, CI ≈ 1.96·0.5025/10.
	want := 1.96 * s.Std() / 10
	if math.Abs(s.CI95()-want) > 1e-12 {
		t.Fatalf("CI95 = %f, want %f", s.CI95(), want)
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	if got := s.String(); !strings.Contains(got, "2.00") || !strings.Contains(got, "n=2") {
		t.Fatalf("String = %q", got)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	xs := []float64{5, 1, 9}
	_ = Median(xs)
	if xs[0] != 5 {
		t.Fatal("Median must not mutate its input")
	}
}

func TestRatioAndImprovement(t *testing.T) {
	if Ratio(6, 3) != 2 || Ratio(1, 0) != 0 {
		t.Fatal("Ratio")
	}
	if ImprovementPct(10, 3) != 70 {
		t.Fatalf("ImprovementPct = %f, want 70", ImprovementPct(10, 3))
	}
	if ImprovementPct(0, 5) != 0 {
		t.Fatal("ImprovementPct with zero base")
	}
}

// Property: Welford mean/variance agree with the two-pass formulas.
func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var s Sample
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			s.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(len(xs)-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-naiveVar) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: min ≤ mean ≤ max.
func TestQuickOrdering(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		var s Sample
		for _, r := range raw {
			s.AddInt(int(r))
		}
		return s.Min() <= s.Mean()+1e-12 && s.Mean() <= s.Max()+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWilson(t *testing.T) {
	// Degenerate inputs.
	if lo, hi := Wilson95(0, 0); lo != 0 || hi != 1 {
		t.Fatalf("Wilson95(0,0) = (%f,%f), want (0,1)", lo, hi)
	}
	// Boundaries stay inside [0,1] and are strict at k=0 / k=n.
	lo, hi := Wilson95(0, 100)
	if lo > 1e-9 || hi <= 0 || hi > 0.06 {
		t.Fatalf("Wilson95(0,100) = (%f,%f)", lo, hi)
	}
	lo, hi = Wilson95(100, 100)
	if hi < 1-1e-9 || hi > 1 || lo >= 1 || lo < 0.94 {
		t.Fatalf("Wilson95(100,100) = (%f,%f)", lo, hi)
	}
	// Interior: brackets p̂ and matches the known value for 50/100
	// (≈ [0.4038, 0.5962]).
	lo, hi = Wilson95(50, 100)
	if lo > 0.5 || hi < 0.5 {
		t.Fatalf("Wilson95(50,100) = (%f,%f) does not bracket 0.5", lo, hi)
	}
	if math.Abs(lo-0.4038) > 0.002 || math.Abs(hi-0.5962) > 0.002 {
		t.Fatalf("Wilson95(50,100) = (%f,%f), want ≈ (0.4038, 0.5962)", lo, hi)
	}
	// Monotone in n: more trials tighten the interval around the same p̂.
	lo2, hi2 := Wilson95(500, 1000)
	if hi2-lo2 >= hi-lo {
		t.Fatal("interval must shrink with more trials")
	}
}
