// Package stats provides the summary statistics the experiment harness
// reports: sample mean, standard deviation, extrema, and Student-t 95%
// confidence intervals. The paper plots single curves; we attach dispersion
// so shape comparisons across schedulers are honest about noise.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations one at a time (Welford's algorithm, so
// long sweeps stay numerically stable).
type Sample struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddInt records an integer observation.
func (s *Sample) AddInt(x int) { s.Add(float64(x)) }

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 for an empty sample).
func (s *Sample) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 for n < 2).
func (s *Sample) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 for an empty sample).
func (s *Sample) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 for an empty sample).
func (s *Sample) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// tTable holds two-sided 97.5% Student-t quantiles for small degrees of
// freedom; beyond 30 the normal approximation 1.96 is used.
var tTable = []float64{
	0, // df=0 unused
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// (0 for n < 2).
func (s *Sample) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	df := s.n - 1
	t := 1.96
	if df < len(tTable) {
		t = tTable[df]
	}
	return t * s.Std() / math.Sqrt(float64(s.n))
}

// String renders "mean ± ci (n=…)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Wilson returns the Wilson score interval for k successes in n trials at
// normal quantile z (1.96 for 95%). Unlike the Wald interval, it stays
// inside [0, 1] and remains honest near the boundaries — exactly where
// Monte-Carlo coverage probabilities live (k = n or k = 0 are common).
func Wilson(k, n int, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	z2 := z * z
	denom := 1 + z2/nn
	center := p + z2/(2*nn)
	margin := z * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	lo = (center - margin) / denom
	hi = (center + margin) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Wilson95 returns the 95% Wilson score interval.
func Wilson95(k, n int) (lo, hi float64) { return Wilson(k, n, 1.96) }

// Median returns the median of xs (0 for an empty slice); xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// Ratio returns a/b, or 0 when b is 0 — used for improvement percentages.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ImprovementPct returns how much better (smaller) `ours` is than `base`,
// as a percentage of base: 100·(base−ours)/base. Positive = improvement.
func ImprovementPct(base, ours float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (base - ours) / base
}
