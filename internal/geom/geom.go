// Package geom provides the computational-geometry substrate of the
// reproduction: points in the deployment plane, unit-disk adjacency tests,
// the convex hull used to seed network-edge detection (reference [3] of the
// paper), and the quadrant partition Q1..Q4 that the E-model's 4-tuple is
// defined over (Section IV-E).
package geom

import (
	"fmt"
	"math"
	"sort"
)

// Point is a location in the deployment plane, in feet (the paper deploys
// nodes over a 50×50 sq ft area).
type Point struct {
	X, Y float64
}

func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Sub returns the vector p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns the vector p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared distance, avoiding the sqrt for comparisons.
func Dist2(p, q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// WithinRange reports whether p and q are within communication radius r of
// each other under the unit-disk model (boundary inclusive, as usual for
// UDG formalizations).
func WithinRange(p, q Point, r float64) bool {
	return Dist2(p, q) <= r*r+1e-9
}

// Cross returns the z-component of (b−a) × (c−a); positive when a→b→c
// turns counter-clockwise.
func Cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// Quadrant identifies one of the four axis-aligned quadrants around an
// origin node, numbered as in the paper: Q1 = (+x, +y), Q2 = (−x, +y),
// Q3 = (−x, −y), Q4 = (+x, −y).
type Quadrant int

const (
	Q1 Quadrant = iota + 1
	Q2
	Q3
	Q4
)

// Quadrants lists all four quadrants in order; handy for range loops.
var Quadrants = [4]Quadrant{Q1, Q2, Q3, Q4}

func (q Quadrant) String() string {
	switch q {
	case Q1:
		return "Q1"
	case Q2:
		return "Q2"
	case Q3:
		return "Q3"
	case Q4:
		return "Q4"
	}
	return fmt.Sprintf("Quadrant(%d)", int(q))
}

// Index returns the zero-based index of the quadrant, for array addressing.
func (q Quadrant) Index() int { return int(q) - 1 }

// QuadrantOf classifies point p relative to origin o. Points on an axis are
// assigned to the adjacent quadrant whose open region they border in
// counter-clockwise order (x>0,y=0 → Q1; x=0,y>0 → Q2; x<0,y=0 → Q3;
// x=0,y<0 → Q4), so that every non-origin point belongs to exactly one
// quadrant — a requirement for the E-model's edge rule N(u)∩Q_i(u)=∅ to be
// well defined. QuadrantOf panics when p == o: a node is never in its own
// neighborhood under the simple-graph model.
func QuadrantOf(o, p Point) Quadrant {
	dx, dy := p.X-o.X, p.Y-o.Y
	switch {
	case dx > 0 && dy >= 0:
		return Q1
	case dx <= 0 && dy > 0:
		return Q2
	case dx < 0 && dy <= 0:
		return Q3
	case dx >= 0 && dy < 0:
		return Q4
	}
	panic("geom: QuadrantOf called with coincident points")
}

// InQuadrant reports whether p lies in quadrant q of origin o.
func InQuadrant(o, p Point, q Quadrant) bool {
	return QuadrantOf(o, p) == q
}

// ConvexHull returns the indices of the points on the convex hull of pts,
// in counter-clockwise order starting from the lexicographically smallest
// point (Andrew's monotone chain). Collinear boundary points are excluded;
// degenerate inputs (n ≤ 2, or all points collinear) return the extreme
// points that exist.
func ConvexHull(pts []Point) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	// Deduplicate coincident points, keeping the first occurrence.
	uniq := idx[:0]
	for i, id := range idx {
		if i > 0 && pts[id] == pts[uniq[len(uniq)-1]] {
			continue
		}
		uniq = append(uniq, id)
	}
	idx = uniq
	if len(idx) == 1 {
		return []int{idx[0]}
	}
	if len(idx) == 2 {
		return []int{idx[0], idx[1]}
	}

	hull := make([]int, 0, 2*len(idx))
	// Lower hull.
	for _, id := range idx {
		for len(hull) >= 2 && Cross(pts[hull[len(hull)-2]], pts[hull[len(hull)-1]], pts[id]) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, id)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(idx) - 2; i >= 0; i-- {
		id := idx[i]
		for len(hull) >= lower && Cross(pts[hull[len(hull)-2]], pts[hull[len(hull)-1]], pts[id]) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, id)
	}
	if len(hull) > 1 {
		hull = hull[:len(hull)-1] // last point equals the first
	}
	if len(hull) == 2 && pts[hull[0]] == pts[hull[1]] {
		hull = hull[:1]
	}
	return hull
}

// PointInHull reports whether p lies inside or on the convex polygon whose
// vertices are pts[hull[i]] in counter-clockwise order.
func PointInHull(p Point, pts []Point, hull []int) bool {
	n := len(hull)
	if n == 0 {
		return false
	}
	if n == 1 {
		return pts[hull[0]] == p
	}
	if n == 2 {
		a, b := pts[hull[0]], pts[hull[1]]
		if math.Abs(Cross(a, b, p)) > 1e-9 {
			return false
		}
		return math.Min(a.X, b.X)-1e-9 <= p.X && p.X <= math.Max(a.X, b.X)+1e-9 &&
			math.Min(a.Y, b.Y)-1e-9 <= p.Y && p.Y <= math.Max(a.Y, b.Y)+1e-9
	}
	for i := 0; i < n; i++ {
		a, b := pts[hull[i]], pts[hull[(i+1)%n]]
		if Cross(a, b, p) < -1e-9 {
			return false
		}
	}
	return true
}

// Angle returns the polar angle of vector p−o in [0, 2π).
func Angle(o, p Point) float64 {
	a := math.Atan2(p.Y-o.Y, p.X-o.X)
	if a < 0 {
		a += 2 * math.Pi
	}
	return a
}

// MaxAngularGap returns the widest angular gap (radians) between
// consecutive directions from origin o to the given neighbor points. A gap
// greater than π indicates o lies on the geometric boundary of its
// neighborhood — the classic hole/boundary-detection heuristic the paper
// cites via reference [1]. With no neighbors the gap is a full circle.
func MaxAngularGap(o Point, neighbors []Point) float64 {
	return MaxAngularGapBuf(o, neighbors, nil)
}

// MaxAngularGapBuf is MaxAngularGap with a caller-supplied scratch buffer
// for the sorted angles, reused across calls by per-node sweeps.
func MaxAngularGapBuf(o Point, neighbors []Point, buf []float64) float64 {
	if len(neighbors) == 0 {
		return 2 * math.Pi
	}
	angles := buf[:0]
	for _, nb := range neighbors {
		angles = append(angles, Angle(o, nb))
	}
	sort.Float64s(angles)
	maxGap := 2*math.Pi - angles[len(angles)-1] + angles[0]
	for i := 1; i < len(angles); i++ {
		if g := angles[i] - angles[i-1]; g > maxGap {
			maxGap = g
		}
	}
	return maxGap
}

// BoundingBox returns the min and max corners of the given points.
func BoundingBox(pts []Point) (min, max Point) {
	if len(pts) == 0 {
		return Point{}, Point{}
	}
	min, max = pts[0], pts[0]
	for _, p := range pts[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	return min, max
}
