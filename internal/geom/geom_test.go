package geom

import (
	"math"
	"testing"
	"testing/quick"

	"mlbs/internal/rng"
)

func TestDist(t *testing.T) {
	if d := Dist(Point{0, 0}, Point{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("Dist = %f, want 5", d)
	}
	if d := Dist2(Point{1, 1}, Point{4, 5}); math.Abs(d-25) > 1e-12 {
		t.Fatalf("Dist2 = %f, want 25", d)
	}
}

func TestWithinRange(t *testing.T) {
	a, b := Point{0, 0}, Point{10, 0}
	if !WithinRange(a, b, 10) {
		t.Fatal("boundary distance must count as within range")
	}
	if WithinRange(a, Point{10.01, 0}, 10) {
		t.Fatal("10.01 > 10 must be out of range")
	}
}

func TestSubAdd(t *testing.T) {
	p := Point{5, 7}.Sub(Point{2, 3})
	if p != (Point{3, 4}) {
		t.Fatalf("Sub = %v", p)
	}
	if q := p.Add(Point{1, 1}); q != (Point{4, 5}) {
		t.Fatalf("Add = %v", q)
	}
}

func TestQuadrantOf(t *testing.T) {
	o := Point{0, 0}
	cases := []struct {
		p Point
		q Quadrant
	}{
		{Point{1, 1}, Q1},
		{Point{-1, 1}, Q2},
		{Point{-1, -1}, Q3},
		{Point{1, -1}, Q4},
		// Axis conventions: each non-origin point in exactly one quadrant.
		{Point{1, 0}, Q1},
		{Point{0, 1}, Q2},
		{Point{-1, 0}, Q3},
		{Point{0, -1}, Q4},
	}
	for _, c := range cases {
		if got := QuadrantOf(o, c.p); got != c.q {
			t.Fatalf("QuadrantOf(%v) = %v, want %v", c.p, got, c.q)
		}
		if !InQuadrant(o, c.p, c.q) {
			t.Fatalf("InQuadrant(%v, %v) = false", c.p, c.q)
		}
	}
}

func TestQuadrantOfCoincidentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QuadrantOf with p == o must panic")
		}
	}()
	QuadrantOf(Point{1, 2}, Point{1, 2})
}

func TestQuadrantPartitionProperty(t *testing.T) {
	// Every non-origin point belongs to exactly one quadrant.
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || (x == 0 && y == 0) {
			return true
		}
		o := Point{0, 0}
		p := Point{x, y}
		count := 0
		for _, q := range Quadrants {
			if InQuadrant(o, p, q) {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuadrantString(t *testing.T) {
	if Q1.String() != "Q1" || Q4.String() != "Q4" {
		t.Fatal("Quadrant String mismatch")
	}
	if Q3.Index() != 2 {
		t.Fatalf("Q3.Index = %d, want 2", Q3.Index())
	}
}

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4", len(hull))
	}
	onHull := map[int]bool{}
	for _, h := range hull {
		onHull[h] = true
	}
	for _, want := range []int{0, 1, 2, 3} {
		if !onHull[want] {
			t.Fatalf("corner %d missing from hull %v", want, hull)
		}
	}
	if onHull[4] || onHull[5] {
		t.Fatalf("interior point on hull %v", hull)
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Fatalf("empty input hull = %v, want nil", h)
	}
	if h := ConvexHull([]Point{{1, 1}}); len(h) != 1 || h[0] != 0 {
		t.Fatalf("single-point hull = %v", h)
	}
	if h := ConvexHull([]Point{{1, 1}, {2, 2}}); len(h) != 2 {
		t.Fatalf("two-point hull = %v", h)
	}
	// All collinear: extremes only.
	h := ConvexHull([]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if len(h) != 2 {
		t.Fatalf("collinear hull = %v, want the two extremes", h)
	}
	// Coincident points must not produce duplicates.
	h = ConvexHull([]Point{{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0.5, 1}})
	if len(h) != 3 {
		t.Fatalf("hull with duplicates = %v, want 3 vertices", h)
	}
}

func TestConvexHullCCWAndContainsAll(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 50; trial++ {
		n := 3 + r.Intn(60)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{r.InRange(0, 50), r.InRange(0, 50)}
		}
		hull := ConvexHull(pts)
		if len(hull) >= 3 {
			for i := range hull {
				a := pts[hull[i]]
				b := pts[hull[(i+1)%len(hull)]]
				c := pts[hull[(i+2)%len(hull)]]
				if Cross(a, b, c) <= 0 {
					t.Fatalf("hull not strictly counter-clockwise at vertex %d", i)
				}
			}
		}
		for i, p := range pts {
			if !PointInHull(p, pts, hull) {
				t.Fatalf("point %d (%v) outside its own hull", i, p)
			}
		}
	}
}

func TestPointInHull(t *testing.T) {
	pts := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}}
	hull := ConvexHull(pts)
	if !PointInHull(Point{2, 2}, pts, hull) {
		t.Fatal("interior point reported outside")
	}
	if !PointInHull(Point{0, 2}, pts, hull) {
		t.Fatal("edge point reported outside")
	}
	if PointInHull(Point{5, 2}, pts, hull) {
		t.Fatal("exterior point reported inside")
	}
	if PointInHull(Point{1, 1}, pts, nil) {
		t.Fatal("empty hull contains nothing")
	}
}

func TestAngle(t *testing.T) {
	o := Point{0, 0}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{1, 0}, 0},
		{Point{0, 1}, math.Pi / 2},
		{Point{-1, 0}, math.Pi},
		{Point{0, -1}, 3 * math.Pi / 2},
	}
	for _, c := range cases {
		if got := Angle(o, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Angle(%v) = %f, want %f", c.p, got, c.want)
		}
	}
}

func TestMaxAngularGap(t *testing.T) {
	o := Point{0, 0}
	if g := MaxAngularGap(o, nil); math.Abs(g-2*math.Pi) > 1e-12 {
		t.Fatalf("gap with no neighbors = %f, want 2π", g)
	}
	// Neighbors to the east and north: the gap spanning west/south is 3π/2.
	g := MaxAngularGap(o, []Point{{1, 0}, {0, 1}})
	if math.Abs(g-3*math.Pi/2) > 1e-12 {
		t.Fatalf("gap = %f, want 3π/2", g)
	}
	// Surrounded on four sides: gap π/2.
	g = MaxAngularGap(o, []Point{{1, 0}, {0, 1}, {-1, 0}, {0, -1}})
	if math.Abs(g-math.Pi/2) > 1e-12 {
		t.Fatalf("gap = %f, want π/2", g)
	}
}

func TestBoundingBox(t *testing.T) {
	min, max := BoundingBox([]Point{{1, 5}, {-2, 3}, {4, -1}})
	if min != (Point{-2, -1}) || max != (Point{4, 5}) {
		t.Fatalf("BoundingBox = %v %v", min, max)
	}
	min, max = BoundingBox(nil)
	if min != (Point{}) || max != (Point{}) {
		t.Fatal("BoundingBox(nil) should be zero points")
	}
}

func TestCrossSign(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if Cross(a, b, Point{1, 1}) <= 0 {
		t.Fatal("left turn must be positive")
	}
	if Cross(a, b, Point{1, -1}) >= 0 {
		t.Fatal("right turn must be negative")
	}
	if Cross(a, b, Point{2, 0}) != 0 {
		t.Fatal("collinear must be zero")
	}
}

func BenchmarkConvexHull(b *testing.B) {
	r := rng.New(4)
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Point{r.InRange(0, 50), r.InRange(0, 50)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ConvexHull(pts)
	}
}
