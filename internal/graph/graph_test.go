package graph

import (
	"sort"
	"testing"
	"testing/quick"

	"mlbs/internal/bitset"
	"mlbs/internal/geom"
	"mlbs/internal/rng"
)

// pathGraph builds 0—1—2—…—(n−1).
func pathGraph(n int) *Graph {
	b := NewBuilder(n, nil)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := NewBuilder(4, nil).AddEdge(0, 1).AddEdge(1, 2).AddEdge(1, 0).Build()
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (duplicate edge collapsed)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} missing or not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge {0,2}")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(1), g.Degree(3))
	}
}

func TestBuilderSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("self-loop must panic")
		}
	}()
	NewBuilder(2, nil).AddEdge(1, 1)
}

func TestBuilderRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge must panic")
		}
	}()
	NewBuilder(2, nil).AddEdge(0, 5)
}

func TestAdjSortedAndNbrConsistent(t *testing.T) {
	g := NewBuilder(5, nil).AddEdge(3, 1).AddEdge(3, 0).AddEdge(3, 4).Build()
	adj := g.Adj(3)
	want := []NodeID{0, 1, 4}
	if len(adj) != 3 {
		t.Fatalf("Adj(3) = %v", adj)
	}
	for i, v := range want {
		if adj[i] != v {
			t.Fatalf("Adj(3) = %v, want %v", adj, want)
		}
		if !g.Nbr(3).Has(v) {
			t.Fatalf("Nbr(3) missing %d", v)
		}
	}
	if g.Nbr(3).Has(3) {
		t.Fatal("node in its own neighborhood")
	}
}

func TestFromUDG(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 0}, {X: 15, Y: 0}, {X: 15, Y: 8}}
	g := FromUDG(pos, 10)
	wantEdges := [][2]int{{0, 1}, {1, 2}, {2, 3}}
	if g.M() != len(wantEdges) {
		t.Fatalf("M = %d, want %d", g.M(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
	if g.Radius() != 10 {
		t.Fatalf("Radius = %f", g.Radius())
	}
}

func TestFromUDGBoundaryInclusive(t *testing.T) {
	g := FromUDG([]geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}, 10)
	if !g.HasEdge(0, 1) {
		t.Fatal("distance exactly equal to radius must be an edge")
	}
}

// FromUDG must agree with the naive O(n²) construction.
func TestFromUDGMatchesNaive(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(80)
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: r.InRange(0, 50), Y: r.InRange(0, 50)}
		}
		g := FromUDG(pos, 10)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := geom.WithinRange(pos[i], pos[j], 10)
				if g.HasEdge(i, j) != want {
					t.Fatalf("trial %d: edge {%d,%d} = %v, want %v", trial, i, j, g.HasEdge(i, j), want)
				}
			}
		}
	}
}

func TestBFS(t *testing.T) {
	g := pathGraph(5)
	dist := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := NewBuilder(3, nil).AddEdge(0, 1).Build()
	dist := g.BFS(0)
	if dist[2] != -1 {
		t.Fatalf("unreachable node dist = %d, want -1", dist[2])
	}
}

func TestMultiSourceBFS(t *testing.T) {
	g := pathGraph(7)
	sources := bitset.FromMembers(7, 0, 6)
	dist, _ := g.MultiSourceBFS(sources, nil, nil)
	want := []int{0, 1, 2, 3, 2, 1, 0}
	for i := range want {
		if dist[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want[i])
		}
	}
}

func TestMultiSourceBFSReusesBuffers(t *testing.T) {
	g := pathGraph(5)
	dist := make([]int, 5)
	queue := make([]NodeID, 0, 5)
	d1, q1 := g.MultiSourceBFS(bitset.FromMembers(5, 0), dist, queue)
	if &d1[0] != &dist[0] {
		t.Fatal("dist buffer not reused")
	}
	d2, _ := g.MultiSourceBFS(bitset.FromMembers(5, 4), d1, q1)
	if d2[0] != 4 {
		t.Fatalf("second reuse produced wrong distances: %v", d2)
	}
}

func TestEccentricityDiameter(t *testing.T) {
	g := pathGraph(6)
	ecc, ok := g.Eccentricity(0)
	if !ok || ecc != 5 {
		t.Fatalf("Eccentricity(0) = %d,%v want 5,true", ecc, ok)
	}
	ecc, _ = g.Eccentricity(3)
	if ecc != 3 {
		t.Fatalf("Eccentricity(3) = %d, want 3", ecc)
	}
	if d := g.Diameter(); d != 5 {
		t.Fatalf("Diameter = %d, want 5", d)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := NewBuilder(4, nil).AddEdge(0, 1).AddEdge(2, 3).Build()
	if d := g.Diameter(); d != -1 {
		t.Fatalf("Diameter of disconnected graph = %d, want -1", d)
	}
	if g.Connected() {
		t.Fatal("Connected = true for disconnected graph")
	}
}

func TestComponents(t *testing.T) {
	g := NewBuilder(6, nil).AddEdge(0, 1).AddEdge(1, 2).AddEdge(4, 5).Build()
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("largest component = %v", comps[0])
	}
	if len(comps[1]) != 2 || comps[1][0] != 4 {
		t.Fatalf("second component = %v", comps[1])
	}
	if len(comps[2]) != 1 || comps[2][0] != 3 {
		t.Fatalf("singleton component = %v", comps[2])
	}
}

func TestLayers(t *testing.T) {
	// Star with an extra tail: 0 center; 1,2,3 at hop 1; 4 at hop 2.
	g := NewBuilder(5, nil).AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3).AddEdge(3, 4).Build()
	layers := g.Layers(0)
	if len(layers) != 3 {
		t.Fatalf("layer count = %d, want 3", len(layers))
	}
	if len(layers[0]) != 1 || layers[0][0] != 0 {
		t.Fatalf("layer 0 = %v", layers[0])
	}
	if len(layers[1]) != 3 {
		t.Fatalf("layer 1 = %v", layers[1])
	}
	if len(layers[2]) != 1 || layers[2][0] != 4 {
		t.Fatalf("layer 2 = %v", layers[2])
	}
}

func TestDegreeStats(t *testing.T) {
	g := NewBuilder(4, nil).AddEdge(0, 1).AddEdge(0, 2).AddEdge(0, 3).Build()
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Fatalf("AvgDegree = %f, want 1.5", got)
	}
}

func TestNeighborsInQuadrant(t *testing.T) {
	pos := []geom.Point{{X: 0, Y: 0}, {X: 5, Y: 5}, {X: -5, Y: 5}, {X: -5, Y: -5}, {X: 5, Y: -5}}
	b := NewBuilder(5, pos)
	for v := 1; v < 5; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	for i, q := range geom.Quadrants {
		nbrs := g.NeighborsInQuadrant(0, q)
		if len(nbrs) != 1 || nbrs[0] != i+1 {
			t.Fatalf("NeighborsInQuadrant(0, %v) = %v, want [%d]", q, nbrs, i+1)
		}
	}
}

// Property: BFS distances satisfy the triangle-ish relation along edges:
// |dist(u) − dist(v)| ≤ 1 for every edge {u,v} in a connected graph.
func TestQuickBFSLipschitz(t *testing.T) {
	r := rng.New(31)
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(40)
		b := NewBuilder(n, nil)
		// Random connected graph: spanning chain + random extras.
		for i := 1; i < n; i++ {
			b.AddEdge(i, src.Intn(i))
		}
		for k := 0; k < n; k++ {
			u, v := src.Intn(n), src.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		dist := g.BFS(r.Intn(n))
		for u := 0; u < n; u++ {
			for _, v := range g.Adj(u) {
				d := dist[u] - dist[v]
				if d < -1 || d > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: multi-source BFS equals the pointwise minimum of per-source BFS.
func TestQuickMultiSourceMin(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 3 + src.Intn(30)
		b := NewBuilder(n, nil)
		for i := 1; i < n; i++ {
			b.AddEdge(i, src.Intn(i))
		}
		g := b.Build()
		s1, s2 := src.Intn(n), src.Intn(n)
		sources := bitset.FromMembers(n, s1, s2)
		got, _ := g.MultiSourceBFS(sources, nil, nil)
		d1, d2 := g.BFS(s1), g.BFS(s2)
		for i := 0; i < n; i++ {
			want := d1[i]
			if d2[i] < want {
				want = d2[i]
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFromUDG300(b *testing.B) {
	r := rng.New(8)
	pos := make([]geom.Point, 300)
	for i := range pos {
		pos[i] = geom.Point{X: r.InRange(0, 50), Y: r.InRange(0, 50)}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = FromUDG(pos, 10)
	}
}

func BenchmarkMultiSourceBFS(b *testing.B) {
	r := rng.New(9)
	pos := make([]geom.Point, 300)
	for i := range pos {
		pos[i] = geom.Point{X: r.InRange(0, 50), Y: r.InRange(0, 50)}
	}
	g := FromUDG(pos, 10)
	sources := bitset.FromMembers(300, 0, 13, 77)
	dist := make([]int, 300)
	queue := make([]NodeID, 0, 300)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist, queue = g.MultiSourceBFS(sources, dist, queue)
	}
}

// TestFromUDGMatchesNaiveDegenerate pins the grid-bucketed construction
// (dense counting-sort grid with map fallback) against the O(n²)
// definition on geometry the paper never produces: negative coordinates,
// varying radii, and outlier points that force the map-grid fallback.
func TestFromUDGMatchesNaiveDegenerate(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(120)
		radius := 0.5 + r.Float64()*12
		pos := make([]geom.Point, n)
		for i := range pos {
			pos[i] = geom.Point{X: r.InRange(-40, 60), Y: r.InRange(-40, 60)}
		}
		if trial%5 == 4 {
			// Degenerate spread: forces the map-grid fallback.
			pos[0].X += 1e9
		}
		g := FromUDG(pos, radius)
		edges := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := geom.WithinRange(pos[i], pos[j], radius)
				if g.HasEdge(i, j) != want {
					t.Fatalf("trial %d: edge {%d,%d} = %v, want %v", trial, i, j, g.HasEdge(i, j), want)
				}
				if want {
					edges++
				}
			}
		}
		if g.M() != edges {
			t.Fatalf("trial %d: M()=%d, naive count %d", trial, g.M(), edges)
		}
		for u := 0; u < n; u++ {
			if !sort.IntsAreSorted(g.Adj(u)) {
				t.Fatalf("trial %d: Adj(%d) not sorted: %v", trial, u, g.Adj(u))
			}
			if len(g.Adj(u)) != g.Nbr(u).Len() {
				t.Fatalf("trial %d: adj/nbr cardinality mismatch at %d", trial, u)
			}
		}
	}
}
