// Package graph provides the network-graph substrate: a WSN topology as an
// undirected graph with node positions, adjacency lists, per-node neighbor
// bitsets (the representation the scheduler's conflict tests run on), and
// the breadth-first machinery (hop distances, eccentricity, diameter,
// connectivity) that both the baselines and the analytical bounds use.
package graph

import (
	"fmt"
	"sort"

	"mlbs/internal/bitset"
	"mlbs/internal/geom"
)

// NodeID identifies a node; IDs are dense in [0, N).
type NodeID = int

// Graph is an immutable undirected graph over nodes 0..n−1. Build one with
// NewBuilder (explicit edges) or FromUDG (unit-disk construction from
// positions). The zero value is an empty graph.
type Graph struct {
	pos    []geom.Point
	adj    [][]NodeID
	nbr    []bitset.Set // nbr[u] = bitset of N(u); u ∉ nbr[u]
	radius float64      // communication radius when built as a UDG, else 0
	edges  int
}

// Builder accumulates nodes and edges and produces an immutable Graph.
type Builder struct {
	pos   []geom.Point
	edges map[[2]NodeID]bool
}

// NewBuilder returns a Builder for n nodes at the given positions. pos may
// be nil for abstract (position-free) graphs used in unit tests; quadrant-
// dependent code requires positions.
func NewBuilder(n int, pos []geom.Point) *Builder {
	if pos != nil && len(pos) != n {
		panic("graph: position count does not match node count")
	}
	if pos == nil {
		pos = make([]geom.Point, n)
	}
	return &Builder{pos: pos, edges: make(map[[2]NodeID]bool)}
}

// AddEdge records the undirected edge {u, v}. Self-loops are rejected:
// the paper's model is a simple graph.
func (b *Builder) AddEdge(u, v NodeID) *Builder {
	if u == v {
		panic("graph: self-loop")
	}
	if u < 0 || v < 0 || u >= len(b.pos) || v >= len(b.pos) {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, len(b.pos)))
	}
	if u > v {
		u, v = v, u
	}
	b.edges[[2]NodeID{u, v}] = true
	return b
}

// Build finalizes the graph.
func (b *Builder) Build() *Graph {
	n := len(b.pos)
	g := &Graph{
		pos: append([]geom.Point(nil), b.pos...),
		adj: make([][]NodeID, n),
		nbr: make([]bitset.Set, n),
	}
	for i := 0; i < n; i++ {
		g.nbr[i] = bitset.New(n)
	}
	for e := range b.edges {
		u, v := e[0], e[1]
		g.adj[u] = append(g.adj[u], v)
		g.adj[v] = append(g.adj[v], u)
		g.nbr[u].Add(v)
		g.nbr[v].Add(u)
		g.edges++
	}
	for i := range g.adj {
		sort.Ints(g.adj[i])
	}
	return g
}

// FromUDG builds the unit-disk graph over the given positions: nodes are
// adjacent exactly when their distance is at most radius (Section III).
//
// The construction sits on the churn engine's hot path — every topology
// delta rebuilds the mutated graph before re-planning — so it avoids maps
// and per-node sorting entirely: candidate pairs come from a dense
// counting-sorted cell grid, neighbor bitsets live in one shared slab, and
// the sorted adjacency lists are read back out of the bitsets (ascending
// by construction) into a second slab.
func FromUDG(pos []geom.Point, radius float64) *Graph {
	if radius <= 0 {
		panic("graph: non-positive radius")
	}
	n := len(pos)
	g := &Graph{
		pos: append([]geom.Point(nil), pos...),
		adj: make([][]NodeID, n),
		nbr: make([]bitset.Set, n),
	}
	// One slab backs every neighbor bitset: n allocations → 1.
	words := bitset.WordsFor(n)
	slab := make([]uint64, n*words)
	for i := range g.nbr {
		g.nbr[i] = bitset.Set(slab[i*words : (i+1)*words])
	}
	forEachPair(pos, radius, func(i, j NodeID) {
		g.nbr[i].Add(j)
		g.nbr[j].Add(i)
		g.edges++
	})
	// Adjacency lists read back from the bitsets: ascending order for
	// free, one slab for all lists.
	adjSlab := make([]NodeID, 0, 2*g.edges)
	for u := 0; u < n; u++ {
		start := len(adjSlab)
		adjSlab = g.nbr[u].AppendMembers(adjSlab)
		g.adj[u] = adjSlab[start:len(adjSlab):len(adjSlab)]
	}
	g.radius = radius
	return g
}

// forEachPair calls link exactly once per unordered position pair within
// radius, using grid bucketing (candidate pairs only within neighboring
// cells of side radius — ~O(n · density) instead of O(n²)).
func forEachPair(pos []geom.Point, radius float64, link func(i, j NodeID)) {
	n := len(pos)
	if n == 0 {
		return
	}
	// Dense grid path: counting-sort nodes into cells of an explicit
	// (nx × ny) array. Degenerate geometry (non-finite coordinates, a
	// bounding box spanning absurdly many cells) falls back to a map grid.
	minX, minY := pos[0].X, pos[0].Y
	maxX, maxY := minX, minY
	finite := true
	for _, p := range pos {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
		if p.X != p.X || p.Y != p.Y || p.X-p.X != 0 || p.Y-p.Y != 0 {
			finite = false
			break
		}
	}
	spanX, spanY := (maxX-minX)/radius, (maxY-minY)/radius
	if !finite || !(spanX >= 0) || !(spanY >= 0) || spanX > 4e6 || spanY > 4e6 ||
		(spanX+1)*(spanY+1) > float64(4*n+64) {
		forEachPairMap(pos, radius, link)
		return
	}
	nx, ny := int(spanX)+1, int(spanY)+1
	cells := nx * ny
	cellOf := make([]int32, n)
	count := make([]int32, cells+1)
	for i, p := range pos {
		c := int32(int((p.X-minX)/radius)*ny + int((p.Y-minY)/radius))
		cellOf[i] = c
		count[c+1]++
	}
	for c := 0; c < cells; c++ {
		count[c+1] += count[c]
	}
	nodes := make([]int32, n)
	fill := append([]int32(nil), count[:cells]...)
	for i := range pos {
		c := cellOf[i]
		nodes[fill[c]] = int32(i)
		fill[c]++
	}
	for i, p := range pos {
		cx, cy := int(cellOf[i])/ny, int(cellOf[i])%ny
		for dx := -1; dx <= 1; dx++ {
			x := cx + dx
			if x < 0 || x >= nx {
				continue
			}
			for dy := -1; dy <= 1; dy++ {
				y := cy + dy
				if y < 0 || y >= ny {
					continue
				}
				c := x*ny + y
				for _, j32 := range nodes[count[c]:count[c+1]] {
					j := int(j32)
					// Each unordered pair {i, j} is visited exactly once:
					// from its lower endpoint, with j in i's 3×3 cell hood.
					if j <= i {
						continue
					}
					if geom.WithinRange(p, pos[j], radius) {
						link(i, j)
					}
				}
			}
		}
	}
}

// forEachPairMap is the map-bucketed fallback for degenerate geometry.
func forEachPairMap(pos []geom.Point, radius float64, link func(i, j NodeID)) {
	cell := func(p geom.Point) [2]int {
		return [2]int{int(p.X / radius), int(p.Y / radius)}
	}
	buckets := make(map[[2]int][]NodeID, len(pos))
	for i, p := range pos {
		c := cell(p)
		buckets[c] = append(buckets[c], i)
	}
	for i, p := range pos {
		c := cell(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{c[0] + dx, c[1] + dy}] {
					if j <= i {
						continue
					}
					if geom.WithinRange(p, pos[j], radius) {
						link(i, j)
					}
				}
			}
		}
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.edges }

// Radius returns the UDG communication radius, or 0 for abstract graphs.
func (g *Graph) Radius() float64 { return g.radius }

// Pos returns the position of node u.
func (g *Graph) Pos(u NodeID) geom.Point { return g.pos[u] }

// Positions returns the backing position slice; callers must not modify it.
func (g *Graph) Positions() []geom.Point { return g.pos }

// Adj returns the sorted adjacency list of u; callers must not modify it.
func (g *Graph) Adj(u NodeID) []NodeID { return g.adj[u] }

// Nbr returns the neighbor bitset of u; callers must not modify it.
func (g *Graph) Nbr(u NodeID) bitset.Set { return g.nbr[u] }

// Degree returns |N(u)|.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// HasEdge reports whether {u,v} ∈ E.
func (g *Graph) HasEdge(u, v NodeID) bool { return g.nbr[u].Has(v) }

// MaxDegree returns the maximum node degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// AvgDegree returns the mean node degree.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.adj))
}

// BFS returns hop distances from source s; unreachable nodes get -1.
func (g *Graph) BFS(s NodeID) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []NodeID{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// MultiSourceBFS returns, for every node, the hop distance to the nearest
// node in the sources set; nodes in sources get 0, unreachable nodes -1.
// dist may be nil, in which case a fresh slice is allocated; passing a
// reusable buffer keeps the scheduler's lower-bound computation
// allocation-free.
func (g *Graph) MultiSourceBFS(sources bitset.Set, dist []int, queue []NodeID) ([]int, []NodeID) {
	n := g.N()
	if dist == nil {
		dist = make([]int, n)
	}
	for i := range dist {
		dist[i] = -1
	}
	queue = queue[:0]
	sources.ForEach(func(u int) {
		dist[u] = 0
		queue = append(queue, u)
	})
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist, queue
}

// Eccentricity returns the maximum hop distance from s to any reachable
// node, and whether all nodes are reachable.
func (g *Graph) Eccentricity(s NodeID) (ecc int, connected bool) {
	dist := g.BFS(s)
	connected = true
	for _, d := range dist {
		if d < 0 {
			connected = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, connected
}

// Connected reports whether the graph is connected (true for n ≤ 1).
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	_, ok := g.Eccentricity(0)
	return ok
}

// Diameter returns the maximum eccentricity over all nodes, or -1 when the
// graph is disconnected.
func (g *Graph) Diameter() int {
	d := 0
	for u := 0; u < g.N(); u++ {
		ecc, ok := g.Eccentricity(u)
		if !ok {
			return -1
		}
		if ecc > d {
			d = ecc
		}
	}
	return d
}

// Components returns the connected components as slices of node IDs, each
// sorted, largest first.
func (g *Graph) Components() [][]NodeID {
	seen := make([]bool, g.N())
	var comps [][]NodeID
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []NodeID
		queue := []NodeID{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// Layers partitions nodes by hop distance from s: Layers(s)[k] holds the
// nodes at distance k, sorted. Unreachable nodes are omitted. This is the
// BFS layering that the 26-/17-approximation baselines schedule over.
func (g *Graph) Layers(s NodeID) [][]NodeID {
	dist := g.BFS(s)
	max := 0
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	layers := make([][]NodeID, max+1)
	for u, d := range dist {
		if d >= 0 {
			layers[d] = append(layers[d], u)
		}
	}
	for _, l := range layers {
		sort.Ints(l)
	}
	return layers
}

// DistinctPositions reports whether every node has its own position —
// the precondition for quadrant-based machinery (the E-model). Graphs
// built without positions place all nodes at the origin and return false.
func (g *Graph) DistinctPositions() bool {
	seen := make(map[geom.Point]bool, len(g.pos))
	for _, p := range g.pos {
		if seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// NeighborsInQuadrant returns the neighbors of u lying in quadrant q of u,
// per the paper's Q_i(u) notation. Requires positions.
func (g *Graph) NeighborsInQuadrant(u NodeID, q geom.Quadrant) []NodeID {
	var out []NodeID
	for _, v := range g.adj[u] {
		if geom.QuadrantOf(g.pos[u], g.pos[v]) == q {
			out = append(out, v)
		}
	}
	return out
}

// HasNeighborInQuadrant reports whether u has any neighbor in quadrant q —
// the empty-quadrant test of Algorithm 2 without materializing the list.
func (g *Graph) HasNeighborInQuadrant(u NodeID, q geom.Quadrant) bool {
	for _, v := range g.adj[u] {
		if geom.QuadrantOf(g.pos[u], g.pos[v]) == q {
			return true
		}
	}
	return false
}

// String summarizes the graph for debugging.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d r=%.1f}", g.N(), g.M(), g.radius)
}
