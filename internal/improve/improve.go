// Package improve is the anytime schedule improver: it takes any valid
// broadcast schedule — typically the constant-factor approximation, which
// plans in microseconds but overshoots the optimum by an order of
// magnitude on duty-cycled instances — and tightens it under an explicit
// budget with guided local search over variable neighborhoods:
//
//   - tail re-search: re-plan a suffix of the schedule with the
//     branch-and-bound engine (core.Engine on a residual instance whose
//     PreCovered set is the prefix's coverage), seeding the search with
//     the very suffix it has to beat so an accepted move can only be
//     strictly better. The engine rebuilds greedy classes from scratch,
//     so this is also the class re-color move; state budgets escalate as
//     neighborhoods dry up, which is what makes the improver anytime.
//   - slot merge: fire a whole slot group one group earlier — as a sender
//     union on the shared channel, or as extra channels of the earlier
//     slot on multi-channel instances (channel bundle re-pack; dissolved
//     classes free their channel for the newcomers).
//   - shift: retime the final slot group to the earliest slot at which
//     all its senders are awake, compressing duty-cycle wake waits.
//   - sender thinning: every candidate replay drops senders whose whole
//     reach is already covered, so redundant transmissions dissolve as a
//     side effect of any accepted move (and of the initial normalization
//     pass).
//
// The improver is anytime and monotone: its current schedule is always
// valid — every accepted move is re-verified with Schedule.Validate — and
// the objective (end slot, advance count, transmission count) only ever
// decreases lexicographically, so the run can stop at any instant: a
// wall-clock deadline, a move-count budget (the deterministic replay form
// tests pin), or convergence, whichever lands first.
//
// An Improver is NOT safe for concurrent use; give each goroutine its
// own, like the serving layer gives each worker its own core.Engine.
package improve

import (
	"fmt"
	"slices"
	"time"

	"mlbs/internal/bitset"
	"mlbs/internal/core"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
)

// DefaultSearchBudget is the branch-and-bound state budget of a single
// tail re-search move when Options.SearchBudget is zero. Deliberately
// small: the first full-tail descent at this budget already recovers most
// of the approximation/G-OPT gap, and converged rounds escalate it ×4 up
// to core.DefaultBudget.
const DefaultSearchBudget = 256

// escalationFactor multiplies the tail-search state budget each time
// every neighborhood dries up at the current budget.
const escalationFactor = 4

// shiftScanCap bounds the slots examined by the shift neighborhood; wake
// schedules are periodic, so anything all-awake repeats well within this.
const shiftScanCap = 1024

// Options budgets one Improve call. The zero value runs to convergence.
type Options struct {
	// Deadline bounds wall-clock effort; 0 means no time limit. The clock
	// is checked between moves, so a run may overshoot the deadline by at
	// most one in-flight move (bounded by SearchBudget states).
	Deadline time.Duration
	// MaxMoves bounds candidate evaluations; 0 means no cap. With
	// Deadline == 0 the run never consults the clock and is a
	// deterministic function of (instance, input schedule, MaxMoves,
	// SearchBudget) — the reproducible budget-in-moves form.
	MaxMoves int
	// SearchBudget is the state budget of each tail re-search move;
	// 0 selects DefaultSearchBudget.
	SearchBudget int
	// OnImprove, when non-nil, observes every accepted improvement with
	// the new best schedule and the running stats. The schedule and
	// everything it references are immutable from that point on — the
	// serving layer publishes them to its plan cache generation by
	// generation without copying.
	OnImprove func(*core.Schedule, Stats)
}

// Stats reports one Improve run.
type Stats struct {
	Moves      int  // candidate evaluations consumed (tail searches included)
	Searches   int  // tail re-searches among them
	Accepted   int  // improvements kept
	SlotsSaved int  // input end slot minus output end slot
	Expanded   int  // search states expanded across all tail re-searches
	Exact      bool // output proved optimal over greedy-move schedules
	Converged  bool // every neighborhood dried up before the budget did
	// Per-neighborhood breakdown of the same run: the aggregate counters
	// above are the sums of these four (Moves = ΣAttempted, and so on).
	Norm  MoveStats // input normalization replay
	Tail  MoveStats // branch-and-bound tail re-searches
	Merge MoveStats // slot merges and channel re-packs
	Shift MoveStats // last-group wake-wait retiming
}

// MoveStats is one neighborhood's slice of an Improve run.
type MoveStats struct {
	Attempted  int // candidates evaluated
	Accepted   int // candidates adopted
	SlotsSaved int // end-slot reduction credited to this neighborhood
}

// Improver owns the reusable arenas of the anytime local search: one
// warm core.Engine for tail re-searches, pooled bitsets and the replay
// buffers candidate evaluation runs in. Candidate evaluation allocates
// nothing once the arenas are warm; only accepted moves (rare, bounded
// by the input's latency) materialize fresh schedules.
type Improver struct {
	eng  *core.Engine
	pool *bitset.Pool
	clk  clock // sysClock in production; tests inject a stepped fake

	n       int
	w       bitset.Set // replay coverage
	reach   bitset.Set // per-advance new coverage
	slotCov bitset.Set // coverage claimed by lower channels of the slot
	slotTx  bitset.Set // nodes already transmitting in the slot

	keep    []graph.NodeID // kept senders of the advance under replay
	candAdv []core.Advance // move candidate under construction
	candIDs []graph.NodeID // merged-sender backing for slot merges
	pre     []graph.NodeID // residual PreCovered buffer for tail moves
	cuts    []int          // tail cut list buffer
	groups  []int          // start index of each slot group in cur

	// Interference oracle of the instance under improvement: slot merges
	// and re-packs legal under the graph model may be SINR-illegal, so
	// every candidate replay consults the bound oracle, not the protocol
	// predicate. Rebound at the top of each Improve call.
	ib     interference.Binder
	oracle interference.Oracle
}

// New returns an empty improver; arenas grow on first use and stay warm.
func New() *Improver {
	imp := &Improver{pool: bitset.NewPool(), clk: sysClock{}}
	imp.eng = core.NewSearch("improve", core.SearchConfig{Moves: core.GreedyMoves}).NewEngine()
	return imp
}

// fixedScheduler replays a precomputed schedule as a search incumbent:
// every tail re-search is seeded with the tail it is trying to beat, so
// the search returns something strictly better or fails high onto it —
// an accepted tail move can never worsen the schedule.
type fixedScheduler struct{ sched *core.Schedule }

func (f fixedScheduler) Name() string { return "improve-incumbent" }

func (f fixedScheduler) Schedule(core.Instance) (*core.Result, error) {
	return &core.Result{Scheduler: f.Name(), Schedule: f.sched, PA: f.sched.PA()}, nil
}

// clock abstracts the wall time behind Options.Deadline so deadline runs
// are testable without sleeping: tests inject a stepped fake and watch
// the budget expire deterministically. sysClock is the only reader of
// real time in this package.
type clock interface {
	now() time.Time
}

// sysClock is the production clock backing every Improver built by New.
type sysClock struct{}

// now reads the wall clock.
//
//mlbs:wallclock -- the single audited wall-clock read backing Options.Deadline
func (sysClock) now() time.Time { return time.Now() }

// budgetState tracks the move/deadline budget of one run. The clock is
// consulted only when a deadline was set, keeping move-budgeted runs
// deterministic.
type budgetState struct {
	clk      clock
	deadline time.Time
	timed    bool
	moves    int // remaining candidate evaluations; < 0 means unlimited
}

func newBudget(opt Options, clk clock) budgetState {
	b := budgetState{clk: clk, moves: -1}
	if opt.MaxMoves > 0 {
		b.moves = opt.MaxMoves
	}
	if opt.Deadline > 0 {
		b.timed = true
		b.deadline = clk.now().Add(opt.Deadline)
	}
	return b
}

func (b *budgetState) exhausted() bool {
	if b.moves == 0 {
		return true
	}
	return b.timed && !b.clk.now().Before(b.deadline)
}

// spend consumes one move; false means the budget ran out first.
func (b *budgetState) spend() bool {
	if b.exhausted() {
		return false
	}
	if b.moves > 0 {
		b.moves--
	}
	return true
}

// ensure sizes the replay bitsets for n nodes.
func (imp *Improver) ensure(n int) {
	if imp.n == n && imp.w != nil {
		return
	}
	imp.n = n
	imp.w = bitset.New(n)
	imp.reach = bitset.New(n)
	imp.slotCov = bitset.New(n)
	imp.slotTx = bitset.New(n)
}

// state is the current best schedule of one run plus its objective.
// Advances and their inner slices are write-once: accepted moves replace
// the outer slice with freshly materialized advances, never mutate, so
// snapshots handed to OnImprove stay valid forever.
type state struct {
	cur     []core.Advance
	end     int // objective 1: slot of the last advance
	senders int // objective 3: total transmissions
}

// better reports (endA, advA, sendA) < (endB, advB, sendB)
// lexicographically — the improver's acceptance test.
func better(endA, advA, sendA, endB, advB, sendB int) bool {
	if endA != endB {
		return endA < endB
	}
	if advA != advB {
		return advA < advB
	}
	return sendA < sendB
}

func countSenders(advs []core.Advance) int {
	total := 0
	for _, a := range advs {
		total += len(a.Senders)
	}
	return total
}

// regroup rebuilds the slot-group index (start offset of each distinct
// slot) into imp.groups.
func (imp *Improver) regroup(advs []core.Advance) {
	imp.groups = imp.groups[:0]
	for i, a := range advs {
		if i == 0 || a.T != advs[i-1].T {
			imp.groups = append(imp.groups, i)
		}
	}
}

// groupEnd returns the advance index one past group gi.
func (imp *Improver) groupEnd(gi, total int) int {
	if gi+1 < len(imp.groups) {
		return imp.groups[gi+1]
	}
	return total
}

// Improve tightens a valid schedule for in under opt's budget and returns
// the best schedule reached, which is the input when nothing improved.
// The returned schedule always passes Schedule.Validate(in); its end slot
// never exceeds the input's. The input schedule is never mutated.
func (imp *Improver) Improve(in core.Instance, sched *core.Schedule, opt Options) (*core.Schedule, Stats, error) {
	var st Stats
	if err := sched.Validate(in); err != nil {
		return nil, st, fmt.Errorf("improve: input schedule invalid: %w", err)
	}
	if len(sched.Advances) == 0 {
		st.Exact, st.Converged = true, true
		return &core.Schedule{Source: in.Source, Start: in.Start}, st, nil
	}
	imp.ensure(in.G.N())
	imp.oracle = in.Oracle(&imp.ib)
	s := &state{cur: sched.Advances, end: sched.End(), senders: countSenders(sched.Advances)}
	imp.regroup(s.cur)

	bud := newBudget(opt, imp.clk)
	searchBudget := opt.SearchBudget
	if searchBudget <= 0 {
		searchBudget = DefaultSearchBudget
	}

	// Normalization move: replaying the input thins redundant senders and
	// dissolved advances before any neighborhood runs.
	if bud.spend() {
		st.Moves++
		st.Norm.Attempted++
		if _, err := imp.tryCandidate(in, s, s.cur, &st, &st.Norm, opt); err != nil {
			return nil, st, err
		}
	}

	exactProof := false
	for !bud.exhausted() {
		improvedRound := false

		// Neighborhood 1: tail re-search, coarse to fine. Skipped once the
		// full-tail search has proved the schedule greedy-optimal (only a
		// local move, which escapes the greedy move set, can clear that).
		if !exactProof {
			for _, cut := range imp.tailCuts() {
				if !bud.spend() {
					break
				}
				st.Moves++
				st.Searches++
				st.Tail.Attempted++
				acc, proof, err := imp.tryTail(in, s, cut, searchBudget, &st, opt)
				if err != nil {
					return nil, st, err
				}
				if acc {
					improvedRound = true
					exactProof = proof
					break
				}
				if proof {
					exactProof = true
					break
				}
			}
		}

		// Neighborhood 2: slot merges (and channel re-packs on K > 1).
		if !bud.exhausted() {
			acc, err := imp.sweepMerges(in, s, &bud, &st, opt)
			if err != nil {
				return nil, st, err
			}
			if acc {
				improvedRound = true
				// A local move leaves the greedy move set; any standing
				// optimality proof no longer covers the new schedule.
				exactProof = false
			}
		}

		// Neighborhood 3: retime the last slot group earlier.
		if !bud.exhausted() {
			acc, err := imp.tryShift(in, s, &bud, &st, opt)
			if err != nil {
				return nil, st, err
			}
			if acc {
				improvedRound = true
				exactProof = false
			}
		}

		if bud.exhausted() {
			break
		}
		if improvedRound {
			continue
		}
		if exactProof || searchBudget >= core.DefaultBudget {
			st.Converged = true
			break
		}
		searchBudget *= escalationFactor
		if searchBudget > core.DefaultBudget {
			searchBudget = core.DefaultBudget
		}
	}

	st.Exact = exactProof
	return &core.Schedule{Source: in.Source, Start: in.Start, Advances: s.cur}, st, nil
}

// tailCuts fills imp.cuts with the slot-group indices tail re-searches
// start from this round: the full schedule first (the big win), then the
// second half, then the final quarter.
func (imp *Improver) tailCuts() []int {
	m := len(imp.groups)
	imp.cuts = imp.cuts[:0]
	for _, c := range [...]int{0, m / 2, (3 * m) / 4} {
		if c < m && !slices.Contains(imp.cuts, c) {
			imp.cuts = append(imp.cuts, c)
		}
	}
	return imp.cuts
}

// tryTail re-plans the schedule suffix from slot-group cut onward with
// the branch-and-bound engine on the residual instance (prefix coverage
// as PreCovered), seeded with the current suffix as incumbent. proof
// reports that a full-tail (cut 0) search established greedy-move
// optimality of the resulting schedule.
func (imp *Improver) tryTail(in core.Instance, s *state, cut, searchBudget int, st *Stats, opt Options) (accepted, proof bool, err error) {
	a := imp.groups[cut]
	prefix := s.cur[:a]
	resid := in
	if cut > 0 {
		imp.w.Clear()
		imp.w.Add(in.Source)
		for _, u := range in.PreCovered {
			imp.w.Add(u)
		}
		for _, adv := range prefix {
			for _, v := range adv.Covered {
				imp.w.Add(v)
			}
		}
		imp.pre = imp.w.AppendMembers(imp.pre[:0])
		resid.Start = prefix[len(prefix)-1].T + 1
		resid.PreCovered = imp.pre
	}
	suffix := &core.Schedule{Source: in.Source, Start: resid.Start, Advances: s.cur[a:]}
	res, err := imp.eng.ScheduleWith(resid, core.SearchConfig{
		Moves:     core.GreedyMoves,
		Budget:    searchBudget,
		Incumbent: fixedScheduler{sched: suffix},
	})
	if err != nil {
		return false, false, fmt.Errorf("improve: tail re-search: %w", err)
	}
	st.Expanded += res.Stats.Expanded
	proof = cut == 0 && res.Exact
	newEnd := res.Schedule.End()
	if newEnd >= s.end {
		return false, proof, nil
	}
	merged := make([]core.Advance, 0, len(prefix)+len(res.Schedule.Advances))
	merged = append(merged, prefix...)
	merged = append(merged, res.Schedule.Advances...)
	if err := (&core.Schedule{Source: in.Source, Start: in.Start, Advances: merged}).Validate(in); err != nil {
		return false, false, fmt.Errorf("improve: tail re-search produced an invalid schedule: %w", err)
	}
	imp.adopt(in, s, merged, newEnd, st, &st.Tail, opt)
	return true, proof, nil
}

// sweepMerges tries every slot-merge candidate in deterministic order and
// stops at the first acceptance.
func (imp *Improver) sweepMerges(in core.Instance, s *state, bud *budgetState, st *Stats, opt Options) (bool, error) {
	k := in.K()
	for gi := 1; gi < len(imp.groups); gi++ {
		p, a := imp.groups[gi-1], imp.groups[gi]
		b := imp.groupEnd(gi, len(s.cur))
		tp := s.cur[p].T

		// Whole-group merge: group gi joins group gi−1's slot.
		if bud.spend() {
			st.Moves++
			st.Merge.Attempted++
			cand := imp.candAdv[:0]
			cand = append(cand, s.cur[:p]...)
			if k == 1 {
				// Single channel: one advance per group; merge the sender
				// sets into one class.
				imp.candIDs = append(imp.candIDs[:0], s.cur[p].Senders...)
				imp.candIDs = append(imp.candIDs, s.cur[a].Senders...)
				slices.Sort(imp.candIDs)
				cand = append(cand, core.Advance{T: tp, Senders: imp.candIDs})
			} else {
				cand = append(cand, s.cur[p:a]...)
				for _, adv := range s.cur[a:b] {
					adv.T = tp
					cand = append(cand, adv)
				}
			}
			cand = append(cand, s.cur[b:]...)
			imp.candAdv = cand
			acc, err := imp.tryCandidate(in, s, cand, st, &st.Merge, opt)
			if err != nil || acc {
				return acc, err
			}
		} else {
			return false, nil
		}

		// Single-class re-pack: on K > 1, move one class of group gi onto a
		// free channel of group gi−1, leaving its siblings in place.
		if k > 1 && b-a > 1 {
			for j := a; j < b; j++ {
				if !bud.spend() {
					return false, nil
				}
				st.Moves++
				st.Merge.Attempted++
				cand := imp.candAdv[:0]
				cand = append(cand, s.cur[:a]...)
				moved := s.cur[j]
				moved.T = tp
				cand = append(cand, moved)
				cand = append(cand, s.cur[a:j]...)
				cand = append(cand, s.cur[j+1:]...)
				// Keep slot order: the moved advance belongs to group gi−1,
				// which ends at index a in the original layout — inserting it
				// at position a keeps advances sorted by slot.
				imp.candAdv = cand
				acc, err := imp.tryCandidate(in, s, cand, st, &st.Merge, opt)
				if err != nil || acc {
					return acc, err
				}
			}
		}
	}
	return false, nil
}

// tryShift retimes the last slot group to the earliest slot all its
// senders are awake — the duty-cycle wake-wait compression move.
func (imp *Improver) tryShift(in core.Instance, s *state, bud *budgetState, st *Stats, opt Options) (bool, error) {
	gi := len(imp.groups) - 1
	if gi < 0 {
		return false, nil
	}
	a := imp.groups[gi]
	t := s.cur[a].T
	low := in.Start
	if gi > 0 {
		low = s.cur[a-1].T + 1
	}
	if hi := low + shiftScanCap; t-1 > hi {
		t = hi + 1 // bound the scan; anything periodic repeats well within
	}
	for t2 := low; t2 < t; t2++ {
		awake := true
		for _, adv := range s.cur[a:] {
			for _, u := range adv.Senders {
				if !in.Wake.Awake(u, t2) {
					awake = false
					break
				}
			}
			if !awake {
				break
			}
		}
		if !awake {
			continue
		}
		if !bud.spend() {
			return false, nil
		}
		st.Moves++
		st.Shift.Attempted++
		cand := imp.candAdv[:0]
		cand = append(cand, s.cur...)
		for i := a; i < len(cand); i++ {
			cand[i].T = t2
		}
		imp.candAdv = cand
		return imp.tryCandidate(in, s, cand, st, &st.Shift, opt)
	}
	return false, nil
}

// tryCandidate evaluates one candidate advance list by allocation-free
// replay and, when it beats the current objective, materializes it,
// re-verifies it with Schedule.Validate and adopts it.
func (imp *Improver) tryCandidate(in core.Instance, s *state, cand []core.Advance, st *Stats, ms *MoveStats, opt Options) (bool, error) {
	advC, sendC, end, ok := imp.replay(in, cand, nil)
	if !ok || !better(end, advC, sendC, s.end, len(s.cur), s.senders) {
		return false, nil
	}
	norm := make([]core.Advance, 0, advC)
	if _, _, _, ok := imp.replay(in, cand, &norm); !ok {
		return false, fmt.Errorf("improve: candidate replay diverged (internal error)")
	}
	if err := (&core.Schedule{Source: in.Source, Start: in.Start, Advances: norm}).Validate(in); err != nil {
		return false, fmt.Errorf("improve: accepted move failed validation: %w", err)
	}
	imp.adopt(in, s, norm, end, st, ms, opt)
	return true, nil
}

// adopt installs a validated, freshly materialized advance list as the
// current best, crediting the acceptance to the neighborhood in ms, and
// notifies OnImprove.
func (imp *Improver) adopt(in core.Instance, s *state, advs []core.Advance, end int, st *Stats, ms *MoveStats, opt Options) {
	st.SlotsSaved += s.end - end
	ms.SlotsSaved += s.end - end
	s.cur = advs
	s.end = end
	s.senders = countSenders(advs)
	imp.regroup(advs)
	st.Accepted++
	ms.Accepted++
	if opt.OnImprove != nil {
		opt.OnImprove(&core.Schedule{Source: in.Source, Start: in.Start, Advances: advs}, *st)
	}
}

// replay validates cand against in — the same constraints
// Schedule.Validate enforces — while thinning it: senders with no
// uncovered neighbor are dropped, advances whose whole reach is already
// claimed dissolve (freeing their channel), and surviving advances are
// renumbered onto channels 0, 1, … in order. A sleeping, uncovered,
// twice-transmitting or conflicting sender rejects the candidate. When
// out is non-nil the normalized advances are materialized into it with
// freshly allocated sender/coverage slices; otherwise replay only counts,
// allocation-free. Input Channel and Covered fields are ignored — both
// are re-derived.
func (imp *Improver) replay(in core.Instance, cand []core.Advance, out *[]core.Advance) (advCount, senderCount, end int, ok bool) {
	n := in.G.N()
	k := in.K()
	imp.w.Clear()
	imp.w.Add(in.Source)
	for _, u := range in.PreCovered {
		imp.w.Add(u)
	}
	end = in.Start - 1
	prevSlot := in.Start - 1
	i := 0
	for i < len(cand) {
		t := cand[i].T
		if t <= prevSlot {
			return 0, 0, 0, false
		}
		prevSlot = t
		j := i
		for j < len(cand) && cand[j].T == t {
			j++
		}
		imp.slotCov.Clear()
		imp.slotTx.Clear()
		kept := 0
		for ; i < j; i++ {
			keep := imp.keep[:0]
			for _, u := range cand[i].Senders {
				if !imp.w.Has(u) || !in.Wake.Awake(u, t) {
					imp.keep = keep
					return 0, 0, 0, false
				}
				if in.G.Nbr(u).AnyDifference(imp.w) {
					keep = append(keep, u)
				}
			}
			imp.keep = keep
			if len(keep) == 0 {
				continue // advance dissolved: every sender was redundant
			}
			imp.reach.Clear()
			for _, u := range keep {
				imp.reach.UnionWith(in.G.Nbr(u))
			}
			imp.reach.DifferenceWith(imp.w)
			imp.reach.DifferenceWith(imp.slotCov)
			if imp.reach.Empty() {
				continue // whole reach claimed by lower channels: dissolve
			}
			for _, u := range keep {
				if imp.slotTx.Has(u) {
					return 0, 0, 0, false // one radio per node per slot
				}
				imp.slotTx.Add(u)
			}
			if !imp.oracle.ConflictFree(imp.w, keep) {
				return 0, 0, 0, false
			}
			if kept++; kept > k {
				return 0, 0, 0, false
			}
			if out != nil {
				*out = append(*out, core.Advance{
					T:       t,
					Channel: kept - 1,
					Senders: append([]graph.NodeID(nil), keep...),
					Covered: imp.reach.Members(),
				})
			}
			advCount++
			senderCount += len(keep)
			end = t
			imp.slotCov.UnionWith(imp.reach)
		}
		imp.w.UnionWith(imp.slotCov)
	}
	return advCount, senderCount, end, imp.w.Len() == n
}
