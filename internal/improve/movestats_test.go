package improve

import "testing"

// TestMoveStatsPartitionAggregates pins the per-neighborhood breakdown:
// the four MoveStats rows partition the run's aggregate counters exactly,
// and the tail row mirrors the Searches counter. The observability layer
// exports both forms; they must never drift apart.
func TestMoveStatsPartitionAggregates(t *testing.T) {
	for _, tc := range []struct {
		name       string
		n          int
		seed       uint64
		r, k       int
		moveBudget int
	}{
		{"sync", 120, 3, 1, 1, 48},
		{"dutycycle", 150, 1, 10, 1, 64},
		{"multichannel", 120, 5, 5, 3, 64},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := instance(t, tc.n, tc.seed, tc.r, tc.k)
			base := approximation(t, in)
			_, st, err := New().Improve(in, base, Options{MaxMoves: tc.moveBudget})
			if err != nil {
				t.Fatal(err)
			}
			kinds := []MoveStats{st.Norm, st.Tail, st.Merge, st.Shift}
			var attempted, accepted, saved int
			for _, m := range kinds {
				attempted += m.Attempted
				accepted += m.Accepted
				saved += m.SlotsSaved
				if m.Accepted > m.Attempted {
					t.Errorf("neighborhood accepted %d of %d attempts", m.Accepted, m.Attempted)
				}
			}
			if attempted != st.Moves {
				t.Errorf("ΣAttempted = %d, Moves = %d", attempted, st.Moves)
			}
			if accepted != st.Accepted {
				t.Errorf("ΣAccepted = %d, Accepted = %d", accepted, st.Accepted)
			}
			if saved != st.SlotsSaved {
				t.Errorf("ΣSlotsSaved = %d, SlotsSaved = %d", saved, st.SlotsSaved)
			}
			if st.Tail.Attempted != st.Searches {
				t.Errorf("Tail.Attempted = %d, Searches = %d", st.Tail.Attempted, st.Searches)
			}
			if st.Moves == 0 {
				t.Error("run consumed no moves; the test exercised nothing")
			}
		})
	}
}
