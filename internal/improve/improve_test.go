package improve

import (
	"reflect"
	"testing"
	"time"

	"mlbs/internal/baseline"
	"mlbs/internal/core"
	"mlbs/internal/dutycycle"
	"mlbs/internal/graph"
	"mlbs/internal/topology"
)

// instance builds the paper-topology instance the service and benches
// use: uniform wake at rate r (1 = sync), K channels.
func instance(t testing.TB, n int, seed uint64, r, k int) core.Instance {
	t.Helper()
	dep, err := topology.Generate(topology.PaperConfig(n), seed)
	if err != nil {
		t.Fatal(err)
	}
	var in core.Instance
	if r > 1 {
		wake := dutycycle.NewUniform(n, r, seed^0xA5, 0)
		in = core.Async(dep.G, dep.Source, wake, 0)
	} else {
		in = core.Sync(dep.G, dep.Source)
	}
	if k > 1 {
		in.Channels = k
	}
	return in
}

func approximation(t testing.TB, in core.Instance) *core.Schedule {
	t.Helper()
	sched := baseline.New26()
	if in.Wake.Rate() > 1 {
		sched = baseline.New17()
	}
	res, err := sched.Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	return res.Schedule
}

func TestImproveTightensApproximation(t *testing.T) {
	in := instance(t, 150, 1, 10, 1)
	base := approximation(t, in)
	imp := New()
	out, st, err := imp.Improve(in, base, Options{MaxMoves: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(in); err != nil {
		t.Fatalf("improved schedule invalid: %v", err)
	}
	if out.End() >= base.End() {
		t.Fatalf("17-approx end %d not improved (got %d); duty-cycle headroom is huge", base.End(), out.End())
	}
	if st.SlotsSaved != base.End()-out.End() {
		t.Errorf("SlotsSaved = %d, want %d", st.SlotsSaved, base.End()-out.End())
	}
	if st.Accepted == 0 || st.Searches == 0 {
		t.Errorf("stats show no work: %+v", st)
	}
}

// TestImproveProperties is the satellite property test: over random
// instances in both wake systems and K ∈ {1, 4}, the improver output
// always validates, never ends later than its input, and a fixed
// (seed, budget-in-moves) pair replays to the identical schedule.
func TestImproveProperties(t *testing.T) {
	cases := []struct {
		n int
		r int
		k int
	}{
		{40, 1, 1}, {60, 1, 1}, {80, 1, 4},
		{40, 5, 1}, {60, 10, 1}, {60, 10, 4}, {80, 5, 4},
	}
	imp := New() // deliberately reused across cases: arenas must not leak state
	for _, tc := range cases {
		for seed := uint64(1); seed <= 4; seed++ {
			in := instance(t, tc.n, seed, tc.r, tc.k)
			base := approximation(t, in)
			out, st, err := imp.Improve(in, base, Options{MaxMoves: 24})
			if err != nil {
				t.Fatalf("n=%d r=%d k=%d seed=%d: %v", tc.n, tc.r, tc.k, seed, err)
			}
			if err := out.Validate(in); err != nil {
				t.Fatalf("n=%d r=%d k=%d seed=%d: output invalid: %v", tc.n, tc.r, tc.k, seed, err)
			}
			if out.End() > base.End() {
				t.Fatalf("n=%d r=%d k=%d seed=%d: end worsened %d → %d", tc.n, tc.r, tc.k, seed, base.End(), out.End())
			}
			if out.Latency() > base.Latency() {
				t.Fatalf("n=%d r=%d k=%d seed=%d: latency worsened %d → %d", tc.n, tc.r, tc.k, seed, base.Latency(), out.Latency())
			}
			// Determinism: a fresh improver replays to the same schedule
			// and the same stats.
			out2, st2, err := New().Improve(in, base, Options{MaxMoves: 24})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out.Advances, out2.Advances) {
				t.Fatalf("n=%d r=%d k=%d seed=%d: move-budgeted run not deterministic", tc.n, tc.r, tc.k, seed)
			}
			if st != st2 {
				t.Fatalf("n=%d r=%d k=%d seed=%d: stats diverged: %+v vs %+v", tc.n, tc.r, tc.k, seed, st, st2)
			}
		}
	}
}

// TestImproveGapClosure pins the acceptance criterion: on the n=300
// paper topology with duty-cycle r=10, a 10ms improver budget closes at
// least half the latency gap between the 17-approximation and G-OPT.
func TestImproveGapClosure(t *testing.T) {
	in := instance(t, 300, 1, 10, 1)
	base := approximation(t, in)
	gres, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	gap := base.End() - gres.Schedule.End()
	if gap <= 0 {
		t.Fatalf("no gap to close: approx end %d, G-OPT end %d", base.End(), gres.Schedule.End())
	}
	out, st, err := New().Improve(in, base, Options{Deadline: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(in); err != nil {
		t.Fatalf("improved schedule invalid: %v", err)
	}
	closed := base.End() - out.End()
	t.Logf("approx end %d, G-OPT end %d, improved end %d: closed %d of %d slots (%d moves, %d searches, %d states)",
		base.End(), gres.Schedule.End(), out.End(), closed, gap, st.Moves, st.Searches, st.Expanded)
	if closed*2 < gap {
		t.Fatalf("10ms budget closed %d of %d gap slots; acceptance wants ≥ 50%%", closed, gap)
	}
}

// TestImproveExactProof: with an unbounded budget on a small instance the
// improver's full-tail search proves greedy-move optimality, and the
// result matches G-OPT's end slot.
func TestImproveExactProof(t *testing.T) {
	in := instance(t, 60, 3, 1, 1)
	base := approximation(t, in)
	out, st, err := New().Improve(in, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Error("unbudgeted run did not converge")
	}
	if !st.Exact {
		t.Error("small sync instance should yield a greedy-optimality proof")
	}
	gres, err := core.NewGOPT(0).Schedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.End() > gres.Schedule.End() {
		t.Errorf("exact-converged improver end %d above G-OPT end %d", out.End(), gres.Schedule.End())
	}
}

// TestOnImproveMonotone: every published intermediate is valid and ends
// no later than its predecessor — the contract the serving layer's
// generation counter builds on.
func TestOnImproveMonotone(t *testing.T) {
	in := instance(t, 120, 2, 10, 1)
	base := approximation(t, in)
	prevEnd := base.End()
	published := 0
	_, st, err := New().Improve(in, base, Options{MaxMoves: 48, OnImprove: func(s *core.Schedule, snap Stats) {
		published++
		if err := s.Validate(in); err != nil {
			t.Fatalf("published schedule %d invalid: %v", published, err)
		}
		if s.End() > prevEnd {
			t.Fatalf("published schedule %d worsened end %d → %d", published, prevEnd, s.End())
		}
		prevEnd = s.End()
		if snap.Accepted != published {
			t.Fatalf("snapshot Accepted %d at publication %d", snap.Accepted, published)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if published == 0 || st.Accepted != published {
		t.Fatalf("published %d, stats accepted %d", published, st.Accepted)
	}
}

func TestImproveRejectsInvalidInput(t *testing.T) {
	in := instance(t, 40, 1, 1, 1)
	bad := &core.Schedule{Source: in.Source, Start: in.Start} // covers nothing
	if _, _, err := New().Improve(in, bad, Options{}); err == nil {
		t.Fatal("invalid input schedule accepted")
	}
}

func TestImproveEmptySingleNode(t *testing.T) {
	in := core.Sync(graph.NewBuilder(1, nil).Build(), 0)
	empty := &core.Schedule{Source: in.Source, Start: in.Start}
	out, st, err := New().Improve(in, empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Advances) != 0 || !st.Converged {
		t.Fatalf("single-node improve: %+v, %+v", out, st)
	}
}

// fakeClock steps a fixed amount on every read, so a Deadline budget
// expires after a known number of clock consultations without sleeping.
type fakeClock struct {
	t     time.Time
	step  time.Duration
	reads int
}

func (c *fakeClock) now() time.Time {
	c.reads++
	c.t = c.t.Add(c.step)
	return c.t
}

// panicClock pins the determinism contract: a MaxMoves-only run must
// never consult the clock at all.
type panicClock struct{}

func (panicClock) now() time.Time { panic("MaxMoves-only run read the clock") }

func TestDeadlineBudgetWithInjectedClock(t *testing.T) {
	in := instance(t, 80, 3, 10, 1)
	base := approximation(t, in)

	clk := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	imp := New()
	imp.clk = clk
	out, st, err := imp.Improve(in, base, Options{Deadline: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(in); err != nil {
		t.Fatalf("deadline-bounded schedule invalid: %v", err)
	}
	if out.End() > base.End() {
		t.Fatalf("end worsened: %d -> %d", base.End(), out.End())
	}
	if clk.reads < 2 {
		t.Fatalf("deadline run consulted the clock %d times, want ≥ 2", clk.reads)
	}
	// Every read advances 1ms and the deadline sits 5ms past the first,
	// so the budget dies by the sixth consultation; a run that ignored
	// the injected clock would converge in hundreds of moves.
	if st.Moves > 6 {
		t.Fatalf("deadline did not bite: %d moves spent", st.Moves)
	}
	if st.Converged {
		t.Fatalf("run reports convergence despite expiring deadline: %+v", st)
	}
}

func TestMaxMovesRunNeverReadsClock(t *testing.T) {
	in := instance(t, 60, 2, 10, 1)
	base := approximation(t, in)
	imp := New()
	imp.clk = panicClock{}
	out, _, err := imp.Improve(in, base, Options{MaxMoves: 24})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(in); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
}
