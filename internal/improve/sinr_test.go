package improve

import (
	"testing"

	"mlbs/internal/core"
	"mlbs/internal/geom"
	"mlbs/internal/graph"
	"mlbs/internal/interference"
)

// sinrChain builds two parallel relay arms close enough to jam each other
// under SINR but conflict-free in the protocol model: the relays share no
// uncovered neighbor, yet u2 sits only 1.2 units from u1's receiver while
// u1 sits 1 unit away, so firing both leaves v1 at SINR 1/(1/1.44) ≈ 1.44
// < β = 2.
func sinrChain() (core.Instance, *core.Schedule) {
	pos := []geom.Point{
		{X: -1, Y: 0},  // 0: source
		{X: 0, Y: 0},   // 1: relay u1
		{X: 1, Y: 0},   // 2: receiver v1
		{X: 2.2, Y: 0}, // 3: relay u2
		{X: 3.2, Y: 0}, // 4: receiver v2
	}
	g := graph.NewBuilder(5, pos).
		AddEdge(0, 1).AddEdge(0, 3).
		AddEdge(1, 2).AddEdge(3, 4).
		Build()
	in := core.Sync(g, 0)
	sched := &core.Schedule{Source: 0, Start: 1, Advances: []core.Advance{
		{T: 1, Senders: []graph.NodeID{0}, Covered: []graph.NodeID{1, 3}},
		{T: 2, Senders: []graph.NodeID{1}, Covered: []graph.NodeID{2}},
		{T: 3, Senders: []graph.NodeID{3}, Covered: []graph.NodeID{4}},
	}}
	return in, sched
}

// TestImproveMergeRespectsSINR pins the satellite bugfix: the improver's
// slot-merge move must consult the instance's interference oracle, not the
// protocol-model predicate. The same 3-slot schedule merges to 2 slots
// under the graph model but must stay at 3 under SINR parameters that make
// the merged slot undecodable at v1.
func TestImproveMergeRespectsSINR(t *testing.T) {
	in, sched := sinrChain()
	imp := New()
	out, _, err := imp.Improve(in, sched, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.End() != 2 {
		t.Fatalf("graph model: improver left end=%d, want the relays merged into slot 2", out.End())
	}
	if err := out.Validate(in); err != nil {
		t.Fatalf("graph-improved schedule invalid: %v", err)
	}

	in, sched = sinrChain()
	in.SINR = &interference.SINRParams{Alpha: 2, Beta: 2}
	if err := sched.Validate(in); err != nil {
		t.Fatalf("input schedule must be SINR-valid: %v", err)
	}
	out, _, err = imp.Improve(in, sched, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(in); err != nil {
		t.Fatalf("SINR-improved schedule invalid: %v", err)
	}
	if out.End() != 3 {
		t.Fatalf("SINR model: improver produced end=%d, want 3 (merging the relays is SINR-illegal)", out.End())
	}
}
