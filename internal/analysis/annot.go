package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The `//mlbs:*` directive namespace. Directives are machine-readable
// line comments (no space after //, like //go:noinline), attached either
// to a declaration's doc comment or standing on their own line. Everything
// after a ` -- ` separator is a free-form justification, encouraged on
// every escape hatch so `grep -rn mlbs:` doubles as the audit trail.
const (
	// AnnotHotpath opts a function into the hotalloc analyzer: the body
	// may not contain allocation-inducing constructs.
	AnnotHotpath = "hotpath"
	// AnnotWallclock marks an audited wall-clock/entropy escape inside a
	// determinism-allowlisted package (detclock).
	AnnotWallclock = "wallclock"
	// AnnotDeterministic opts a whole package into detclock, in addition
	// to the hardwired allowlist.
	AnnotDeterministic = "deterministic"
	// AnnotOrderFree marks a map-range whose sink is order-insensitive
	// (commutative accumulation, or sorted before use) for detclock.
	AnnotOrderFree = "orderfree"
	// AnnotPoolOwner marks a function that intentionally lets a pooled
	// bitset escape (stores it for a later, audited Put) for poolput.
	AnnotPoolOwner = "poolowner"
	// AnnotCtxRoot marks a function allowed to mint a root context
	// (context.Background/TODO) past the handler boundary for ctxspan.
	AnnotCtxRoot = "ctxroot"
	// AnnotRequestPath opts a whole package into ctxspan's root-context
	// rule, in addition to the hardwired request-path packages.
	AnnotRequestPath = "requestpath"
	// AnnotAllow is the line-level suppression: `//mlbs:allow <analyzer>`
	// on the diagnostic's line or the line above silences that analyzer
	// there.
	AnnotAllow = "allow"
)

const directivePrefix = "//mlbs:"

// parseDirective splits one comment into a directive name and its
// argument ("" when absent), or ok=false for ordinary comments. The
// justification after ` -- ` is stripped.
func parseDirective(c *ast.Comment) (name, arg string, ok bool) {
	text, ok := strings.CutPrefix(c.Text, directivePrefix)
	if !ok {
		return "", "", false
	}
	if i := strings.Index(text, " -- "); i >= 0 {
		text = text[:i]
	}
	name, arg, _ = strings.Cut(strings.TrimSpace(text), " ")
	return name, strings.TrimSpace(arg), true
}

// docHasDirective reports whether a doc comment group carries //mlbs:name.
func docHasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if n, _, ok := parseDirective(c); ok && n == name {
			return true
		}
	}
	return false
}

// annotIndex resolves line-level //mlbs:allow suppressions: for each file,
// the set of lines carrying an allow directive per analyzer name.
type annotIndex struct {
	fset  *token.FileSet
	allow map[string]map[int]bool // filename -> line -> suppressed (per analyzer, see key)
}

// newAnnotIndex scans every comment once; the map is keyed by
// "filename\x00analyzer" to avoid a two-level map per analyzer.
func newAnnotIndex(fset *token.FileSet, files []*ast.File) *annotIndex {
	ix := &annotIndex{fset: fset, allow: map[string]map[int]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, arg, ok := parseDirective(c)
				if !ok || name != AnnotAllow || arg == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				key := pos.Filename + "\x00" + arg
				m := ix.allow[key]
				if m == nil {
					m = map[int]bool{}
					ix.allow[key] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return ix
}

// suppressed reports whether an allow directive for analyzer sits on the
// diagnostic's line or the line immediately above it.
func (ix *annotIndex) suppressed(analyzer string, pos token.Position) bool {
	m := ix.allow[pos.Filename+"\x00"+analyzer]
	return m != nil && (m[pos.Line] || m[pos.Line-1])
}
