// Package poolput enforces the bitset pool's ownership discipline: every
// Set taken from a bitset.Pool with Get or GetCopy must go back with Put
// on every path out of the acquiring scope — a leaked set silently
// degrades the pool to an allocator and erodes the zero-alloc warm paths;
// a double Put (out of scope here, caught by the pool's aliasing hazard
// documentation) corrupts a neighbor.
//
// The analyzer proves pairing with a syntactic all-paths walk: the
// statement after the Get may defer the Put, or every return/break out of
// the Get's statement sequence must be preceded by one. A set that
// intentionally outlives the function — stored in a struct whose owner
// Puts it later, as the color Scratch does with its compatibility masks —
// escapes legitimately, and the function declares that with
// `//mlbs:poolowner -- reason`.
package poolput

import (
	"go/ast"

	"mlbs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolput",
	Doc:  "require bitset pool Get/Put pairing on every path, or an //mlbs:poolowner annotation",
	Run:  run,
}

const bitsetPath = "mlbs/internal/bitset"

func isGet(p *analysis.Pass, call *ast.CallExpr) bool {
	return analysis.MethodOn(p.TypesInfo, call, bitsetPath, "Pool", "Get") ||
		analysis.MethodOn(p.TypesInfo, call, bitsetPath, "Pool", "GetCopy")
}

func run(p *analysis.Pass) error {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || p.InTestFile(fn.Pos()) {
				continue
			}
			checkFunc(p, fn)
		}
	}
	return nil
}

func checkFunc(p *analysis.Pass, fn *ast.FuncDecl) {
	owner := p.FuncAnnotated(fn, analysis.AnnotPoolOwner)

	// Pass 1: Gets bound to a single local — the provable form.
	bound := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || !isGet(p, call) {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true // stored into a field or element: handled as escape below
			}
			if v := analysis.LocalVar(p.TypesInfo, id); v != nil {
				bound[call] = true
				checkBound(p, fn, n, id, owner)
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
				if !ok || !isGet(p, call) {
					continue
				}
				if v := analysis.LocalVar(p.TypesInfo, vs.Names[0]); v != nil {
					bound[call] = true
					checkBound(p, fn, n, vs.Names[0], owner)
				}
			}
		}
		return true
	})

	// Pass 2: any other Get escapes by construction (returned, appended,
	// stored, passed on) and needs the owner annotation.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || bound[call] || !isGet(p, call) {
			return true
		}
		if !owner {
			p.Reportf(call.Pos(), "pooled bitset escapes %s without a matching Put; annotate the owner with //mlbs:poolowner", fn.Name.Name)
		}
		return true
	})
}

// checkBound verifies one `v := pool.Get(...)` obligation.
func checkBound(p *analysis.Pass, fn *ast.FuncDecl, acquire ast.Stmt, id *ast.Ident, owner bool) {
	v := analysis.LocalVar(p.TypesInfo, id)
	if esc := analysis.Escapes(p.TypesInfo, fn.Body, v); esc != nil {
		if !owner {
			p.Reportf(esc.Pos(), "pooled bitset %s escapes (stored, returned, or captured) without //mlbs:poolowner on %s", id.Name, fn.Name.Name)
		}
		return
	}
	isPut := func(call *ast.CallExpr) bool {
		if !analysis.MethodOn(p.TypesInfo, call, bitsetPath, "Pool", "Put") || len(call.Args) != 1 {
			return false
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		return ok && analysis.LocalVar(p.TypesInfo, arg) == v
	}
	res := analysis.CheckReleased(fn.Body, acquire, isPut)
	if res.Released {
		return
	}
	if res.LeakPos.IsValid() {
		p.Reportf(acquire.Pos(), "pooled bitset %s is not Put on the path exiting at line %d", id.Name, p.Fset.Position(res.LeakPos).Line)
	} else {
		p.Reportf(acquire.Pos(), "pooled bitset %s is not Put before its scope ends", id.Name)
	}
}
