package poolput_test

import (
	"testing"

	"mlbs/internal/analysis/analysistest"
	"mlbs/internal/analysis/poolput"
)

func TestPoolPut(t *testing.T) {
	analysistest.Run(t, "../testdata", poolput.Analyzer, "poolput/a")
}
