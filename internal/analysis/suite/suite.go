// Package suite registers the repo's analyzer suite in one place, shared
// by cmd/mlb-vet and the analysis tests.
package suite

import (
	"mlbs/internal/analysis"
	"mlbs/internal/analysis/ctxspan"
	"mlbs/internal/analysis/detclock"
	"mlbs/internal/analysis/hotalloc"
	"mlbs/internal/analysis/poolput"
)

// Analyzers is the full mlb-vet suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	hotalloc.Analyzer,
	detclock.Analyzer,
	poolput.Analyzer,
	ctxspan.Analyzer,
}
