package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the static callee of call: a package-level function, a
// method (through the Selections map, so embedded promotions resolve), or
// nil for builtins, conversions, and dynamic calls through function
// values.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// PkgFunc reports whether call statically calls one of the named
// package-level functions (or methods) of the package at path, returning
// the matched name.
func PkgFunc(info *types.Info, call *ast.CallExpr, path string, names ...string) (string, bool) {
	f := Callee(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != path {
		return "", false
	}
	for _, n := range names {
		if f.Name() == n {
			return n, true
		}
	}
	return "", false
}

// MethodOn reports whether call invokes the named method on a (possibly
// pointer-wrapped) named type declared in the package at path.
func MethodOn(info *types.Info, call *ast.CallExpr, path, typeName, method string) bool {
	f := Callee(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != path || f.Name() != method {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == typeName
}

// IsBuiltin reports whether id uses the named predeclared builtin
// (go/types records builtins as *types.Builtin objects, never nil).
func IsBuiltin(info *types.Info, id *ast.Ident, name string) bool {
	if id.Name != name {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// LocalVar returns the local variable object bound by id (a definition or
// use), or nil when id names anything else (field, package, constant).
func LocalVar(info *types.Info, id *ast.Ident) *types.Var {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return nil
	}
	return v
}
