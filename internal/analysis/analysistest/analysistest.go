// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against expectations written in the fixture
// itself — the golden-comment discipline of
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the standard
// library so the suite's tests carry no external dependency.
//
// A fixture lives under testdata/src/<pkgpath>/ and marks each expected
// diagnostic with a trailing comment on its line:
//
//	time.Now() // want `reads the wall clock`
//
// The backquoted (or double-quoted) strings are regular expressions
// matched against the diagnostic message; several may follow one `want`
// when a line produces several diagnostics. Lines without a want comment
// must stay silent — both directions are asserted, so a fixture proves an
// analyzer fires where it must and stays quiet where it may.
//
// Imports inside a fixture resolve from testdata/src first (so fixtures
// can model mlbs/internal/bitset or mlbs/internal/obs with small fakes at
// the real import paths), then from the standard library's source.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"mlbs/internal/analysis"
)

// Run loads testdata/src/<pkgpath>, applies a, and reports every mismatch
// between the diagnostics produced and the fixture's want comments as a
// test error.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	pkg, files, info, err := l.loadDir(pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgpath, err)
	}

	var diags []analysis.Diagnostic
	pass := analysis.NewPass(a, l.fset, files, pkg, info, func(d analysis.Diagnostic) {
		diags = append(diags, d)
	})
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s over %s: %v", a.Name, pkgpath, err)
	}
	analysis.SortDiagnostics(l.fset, diags)

	wants := collectWants(t, l.fset, files)
	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		if !claim(wants, pos, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	leftover := make([]*want, 0, len(wants))
	for _, w := range wants {
		if !w.matched {
			leftover = append(leftover, w)
		}
	}
	sort.Slice(leftover, func(i, j int) bool {
		if leftover[i].file != leftover[j].file {
			return leftover[i].file < leftover[j].file
		}
		return leftover[i].line < leftover[j].line
	})
	for _, w := range leftover {
		t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re.String())
	}
}

// want is one expected diagnostic: a regexp anchored to a fixture line.
type want struct {
	file    string // base name
	line    int
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched want on the diagnostic's line whose
// pattern matches the message, reporting whether one existed.
func claim(wants []*want, pos token.Position, msg string) bool {
	file := filepath.Base(pos.Filename)
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == pos.Line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans the fixtures' comments for `// want` expectations.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				pats, err := parsePatterns(text)
				if err != nil {
					t.Fatalf("%s:%d: malformed want comment: %v", filepath.Base(pos.Filename), pos.Line, err)
				}
				for _, pat := range pats {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", filepath.Base(pos.Filename), pos.Line, pat, err)
					}
					wants = append(wants, &want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parsePatterns splits the text after `// want` into its quoted regexps;
// both backquotes and double quotes delimit (backquotes pass regexp
// metacharacters through unescaped).
func parsePatterns(text string) ([]string, error) {
	var pats []string
	rest := strings.TrimSpace(text)
	for rest != "" {
		q := rest[0]
		if q != '`' && q != '"' {
			return nil, fmt.Errorf("expected quoted pattern, found %q", rest)
		}
		end := strings.IndexByte(rest[1:], q)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", rest)
		}
		pats = append(pats, rest[1:1+end])
		rest = strings.TrimSpace(rest[2+end:])
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("no patterns")
	}
	return pats, nil
}

// loader typechecks fixture packages, resolving imports from testdata/src
// ahead of the standard library (compiled from source, no export data
// needed).
type loader struct {
	fset *token.FileSet
	src  string
	pkgs map[string]*types.Package
	std  types.Importer
}

func newLoader(src string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		src:  src,
		pkgs: map[string]*types.Package{},
		std:  importer.ForCompiler(fset, "source", nil),
	}
}

// Import implements types.Importer for the fixtures' dependencies.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		p, _, _, err := l.loadDir(path)
		return p, err
	}
	return l.std.Import(path)
}

// loadDir parses and typechecks one fixture package by import path.
func (l *loader) loadDir(path string) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	l.pkgs[path] = pkg
	return pkg, files, info, nil
}
