// Package ctxspan guards the request path's two threading disciplines.
//
// Context threading: inside the serving packages (internal/service,
// cmd/mlb-serve, and any package annotated `//mlbs:requestpath`), minting
// a root context with context.Background or context.TODO anywhere past
// the handler boundary detaches the work from the request's cancellation
// and deadline — singleflight followers stop observing their caller's
// cancellation, shutdown stops bounding in-flight work. Only main and
// functions annotated `//mlbs:ctxroot -- reason` (process-lifetime roots
// like the shutdown timeout) may do it.
//
// Span pairing: a span begun with (*obs.Span).Child must reach its End on
// every path out of the beginning scope, or the flight recorder publishes
// truncated traces whose "open" spans read as phases that never finished.
// The span rule runs in every package that touches obs, not just the
// serving ones. A span handed off to another goroutine or stored for a
// later End escapes the syntactic check and is reported for explicit
// suppression with `//mlbs:allow ctxspan -- reason`.
package ctxspan

import (
	"go/ast"
	"strconv"

	"mlbs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxspan",
	Doc:  "thread request contexts (no Background/TODO past the handler) and End every obs span on all paths",
	Run:  run,
}

// requestPath is the hardwired set of serving packages for the
// root-context rule; `//mlbs:requestpath` in a package doc extends it.
var requestPath = map[string]bool{
	"mlbs/internal/service": true,
	"mlbs/cmd/mlb-serve":    true,
}

const obsPath = "mlbs/internal/obs"

func run(p *analysis.Pass) error {
	ctxRule := requestPath[p.Pkg.Path()] || p.PkgAnnotated(analysis.AnnotRequestPath)
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if ctxRule {
				checkRootContexts(p, fn)
			}
			checkSpans(p, fn)
		}
	}
	return nil
}

func checkRootContexts(p *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Name.Name == "main" && fn.Recv == nil && p.Pkg.Name() == "main" {
		return // the process entry point is the handler boundary
	}
	if p.FuncAnnotated(fn, analysis.AnnotCtxRoot) {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := analysis.PkgFunc(p.TypesInfo, call, "context", "Background", "TODO"); ok {
			p.Reportf(call.Pos(), "context.%s mints a root context past the handler boundary; thread the request ctx or annotate //mlbs:ctxroot", name)
		}
		return true
	})
}

// isChild reports whether call begins a span via (*obs.Span).Child.
func isChild(p *analysis.Pass, call *ast.CallExpr) bool {
	return analysis.MethodOn(p.TypesInfo, call, obsPath, "Span", "Child")
}

func checkSpans(p *analysis.Pass, fn *ast.FuncDecl) {
	// Pass 1: Child results bound to a single local — the provable form.
	bound := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isChild(p, call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if v := analysis.LocalVar(p.TypesInfo, id); v != nil {
			bound[call] = true
			checkBoundSpan(p, fn, as, call, id)
		}
		return true
	})

	// Pass 2: unbound Child calls are fine only when chained straight
	// into End (span begun and ended in one expression); anything else —
	// dropped on the floor, returned, stored — cannot be proven to End.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "End" {
			if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok && isChild(p, inner) {
				bound[inner] = true // parent.Child("x").End() chain
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || bound[call] || !isChild(p, call) {
			return true
		}
		p.Reportf(call.Pos(), "span %sbegun here never reaches End on this path; bind it and End it on every path", spanName(call))
		return true
	})
}

// checkBoundSpan verifies one `sp := parent.Child(...)` obligation.
func checkBoundSpan(p *analysis.Pass, fn *ast.FuncDecl, acquire ast.Stmt, child *ast.CallExpr, id *ast.Ident) {
	v := analysis.LocalVar(p.TypesInfo, id)
	if esc := analysis.Escapes(p.TypesInfo, fn.Body, v); esc != nil {
		p.Reportf(esc.Pos(), "span %s%s escapes before an End this analysis can see; restructure or annotate //mlbs:allow ctxspan", spanName(child), id.Name)
		return
	}
	isEnd := func(call *ast.CallExpr) bool {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "End" {
			return false
		}
		recv, ok := ast.Unparen(sel.X).(*ast.Ident)
		return ok && analysis.LocalVar(p.TypesInfo, recv) == v
	}
	res := analysis.CheckReleased(fn.Body, acquire, isEnd)
	if res.Released {
		return
	}
	if res.LeakPos.IsValid() {
		p.Reportf(acquire.Pos(), "span %s%s does not End on the path exiting at line %d", spanName(child), id.Name, p.Fset.Position(res.LeakPos).Line)
	} else {
		p.Reportf(acquire.Pos(), "span %s%s does not End before its scope ends", spanName(child), id.Name)
	}
}

// spanName extracts the span's literal name for the message, as `"name" `.
func spanName(call *ast.CallExpr) string {
	if len(call.Args) == 0 {
		return ""
	}
	if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok {
		if s, err := strconv.Unquote(lit.Value); err == nil {
			return strconv.Quote(s) + " "
		}
	}
	return ""
}
