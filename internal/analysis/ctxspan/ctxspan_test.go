package ctxspan_test

import (
	"testing"

	"mlbs/internal/analysis/analysistest"
	"mlbs/internal/analysis/ctxspan"
)

func TestOptedIn(t *testing.T) {
	analysistest.Run(t, "../testdata", ctxspan.Analyzer, "ctxspan/a")
}

func TestHardwiredRequestPath(t *testing.T) {
	analysistest.Run(t, "../testdata", ctxspan.Analyzer, "mlbs/internal/service")
}
