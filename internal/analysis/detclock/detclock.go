// Package detclock enforces the repo's determinism contract: packages on
// the determinism allowlist — the search core, coloring, the replayers,
// bitsets, and the improver's MaxMoves path — must be pure functions of
// their inputs, because golden G-OPT schedules, digest-addressed caching,
// and the improver's reproducible budget-in-moves form all assume it.
// Three things break that contract silently:
//
//   - wall-clock reads (time.Now/Since/Until and timer constructors)
//   - math/rand, whose global source is randomly seeded
//   - ranging over a map into an order-sensitive sink (append, channel
//     send, string accumulation), which varies run to run
//
// The audited escape hatch is `//mlbs:wallclock -- reason` on the one
// function that legitimately owns wall time (after the improver's clock
// injection there is exactly one in the allowlisted tree), and
// `//mlbs:orderfree` on a function whose map iteration provably feeds a
// commutative or re-sorted sink. Packages outside the hardwired list opt
// in with a `//mlbs:deterministic` package directive.
package detclock

import (
	"go/ast"
	"go/token"
	"go/types"

	"mlbs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detclock",
	Doc:  "forbid wall-clock, math/rand, and map-order dependence in determinism-pinned packages",
	Run:  run,
}

// allowlist is the hardwired set of determinism-pinned import paths;
// `//mlbs:deterministic` in a package doc extends it.
var allowlist = map[string]bool{
	"mlbs/internal/core":    true,
	"mlbs/internal/color":   true,
	"mlbs/internal/sim":     true,
	"mlbs/internal/bitset":  true,
	"mlbs/internal/improve": true,
}

// clockFuncs are the package time functions that read or arm wall time.
var clockFuncs = []string{"Now", "Since", "Until", "After", "AfterFunc", "Tick", "NewTimer", "NewTicker"}

func run(p *analysis.Pass) error {
	if !allowlist[p.Pkg.Path()] && !p.PkgAnnotated(analysis.AnnotDeterministic) {
		return nil
	}
	for _, f := range p.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := analysis.PkgFunc(p.TypesInfo, n, "time", clockFuncs...); ok && !exempt(p, n.Pos(), analysis.AnnotWallclock) {
					p.Reportf(n.Pos(), "time.%s reads the wall clock in determinism-pinned package %s", name, p.Pkg.Name())
				}
			case *ast.SelectorExpr:
				if pkgName, ok := selPkg(p, n); ok && (pkgName == "math/rand" || pkgName == "math/rand/v2") && !exempt(p, n.Pos(), analysis.AnnotWallclock) {
					p.Reportf(n.Pos(), "use of %s.%s in determinism-pinned package %s", pkgName, n.Sel.Name, p.Pkg.Name())
					return false
				}
			case *ast.RangeStmt:
				checkMapRange(p, n)
			}
			return true
		})
	}
	return nil
}

// exempt reports whether pos sits inside a function carrying the given
// directive.
func exempt(p *analysis.Pass, pos token.Pos, annot string) bool {
	fn := p.EnclosingFunc(pos)
	return fn != nil && p.FuncAnnotated(fn, annot)
}

// selPkg resolves a selector's qualifier to an imported package path.
func selPkg(p *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pn, ok := p.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path(), true
	}
	return "", false
}

// checkMapRange flags a range over a map whose body feeds an
// order-sensitive sink.
func checkMapRange(p *analysis.Pass, rng *ast.RangeStmt) {
	if !isMap(p, rng.X) {
		return
	}
	if exempt(p, rng.Pos(), analysis.AnnotOrderFree) {
		return
	}
	sink := orderSensitiveSink(p, rng.Body)
	if sink == "" {
		return
	}
	p.Reportf(rng.Pos(), "range over map feeds an order-sensitive sink (%s); iterate sorted keys or annotate //mlbs:orderfree", sink)
}

func isMap(p *analysis.Pass, e ast.Expr) bool {
	t := p.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// orderSensitiveSink names the first construct in body whose result
// depends on iteration order: an append, a channel send, or a string
// accumulation.
func orderSensitiveSink(p *analysis.Pass, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && analysis.IsBuiltin(p.TypesInfo, id, "append") {
				sink = "append"
			}
		case *ast.SendStmt:
			sink = "channel send"
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringT(p, n.Lhs[0]) {
				sink = "string accumulation"
			}
		}
		return true
	})
	return sink
}

func isStringT(p *analysis.Pass, e ast.Expr) bool {
	t := p.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
