package detclock_test

import (
	"testing"

	"mlbs/internal/analysis/analysistest"
	"mlbs/internal/analysis/detclock"
)

func TestOptedIn(t *testing.T) {
	analysistest.Run(t, "../testdata", detclock.Analyzer, "detclock/a")
}

func TestUnpinnedPackageIsSilent(t *testing.T) {
	analysistest.Run(t, "../testdata", detclock.Analyzer, "detclock/plain")
}

func TestHardwiredAllowlist(t *testing.T) {
	analysistest.Run(t, "../testdata", detclock.Analyzer, "mlbs/internal/color")
}
