// Package hotalloc rejects allocation-inducing constructs in functions
// annotated `//mlbs:hotpath` — the plan-cache hit path, the sim's warm
// replay, the search inner loop, and the service's warm Plan, whose
// steady-state allocation counts are pinned by test. The analyzer makes
// the pin's *reasons* explicit at vet time instead of leaving them to be
// rediscovered from a failed alloc-ceiling test:
//
//   - calls into package fmt (formatting always allocates)
//   - non-constant string concatenation
//   - slice and map composite literals, and address-taken composite
//     literals (which escape to the heap)
//   - interface boxing of non-pointer-shaped values at call boundaries
//     and conversions
//   - defer inside a loop (one _defer record per iteration)
//   - append to a slice declared in-function without a capacity
//
// A construct that is deliberate — a cold error path inside a hot
// function, say — carries `//mlbs:allow hotalloc -- reason` on its line.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"mlbs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "reject allocation-inducing constructs in //mlbs:hotpath functions",
	Run:  run,
}

func run(p *analysis.Pass) error {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || p.InTestFile(fn.Pos()) {
				continue
			}
			if !p.FuncAnnotated(fn, analysis.AnnotHotpath) {
				continue
			}
			checkFunc(p, fn)
		}
	}
	return nil
}

func checkFunc(p *analysis.Pass, fn *ast.FuncDecl) {
	fresh := freshSlices(p, fn)
	var walk func(n ast.Node, loopDepth int)
	walk = func(root ast.Node, loopDepth int) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				walkLoop(n.Body, n.Init, n.Cond, n.Post, walk, loopDepth)
				return false
			case *ast.RangeStmt:
				walk(n.X, loopDepth)
				walk(n.Body, loopDepth+1)
				return false
			case *ast.DeferStmt:
				if loopDepth > 0 {
					p.Reportf(n.Pos(), "defer inside a loop allocates a defer record per iteration")
				}
			case *ast.FuncLit:
				// A closure in a hot function is itself an allocation.
				p.Reportf(n.Pos(), "function literal allocates a closure on the hot path")
				return false
			case *ast.CallExpr:
				checkCall(p, n, fresh)
			case *ast.BinaryExpr:
				if n.Op == token.ADD && isStringConcat(p, n) {
					p.Reportf(n.Pos(), "string concatenation allocates on the hot path")
				}
			case *ast.AssignStmt:
				if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(p, n.Lhs[0]) {
					p.Reportf(n.Pos(), "string concatenation allocates on the hot path")
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						p.Reportf(n.Pos(), "address-taken composite literal escapes to the heap")
						for _, e := range cl.Elts {
							walk(e, loopDepth) // still scan element expressions
						}
						return false
					}
				}
			case *ast.CompositeLit:
				switch p.TypesInfo.TypeOf(n).Underlying().(type) {
				case *types.Slice:
					if len(n.Elts) > 0 {
						p.Reportf(n.Pos(), "slice literal allocates on the hot path")
					}
				case *types.Map:
					p.Reportf(n.Pos(), "map literal allocates on the hot path")
				}
			}
			return true
		})
	}
	walk(fn.Body, 0)
}

// walkLoop visits a for statement's pieces with the body at depth+1.
func walkLoop(body *ast.BlockStmt, init ast.Stmt, cond ast.Expr, post ast.Stmt, walk func(ast.Node, int), depth int) {
	if init != nil {
		walk(init, depth)
	}
	if cond != nil {
		walk(cond, depth)
	}
	if post != nil {
		walk(post, depth)
	}
	walk(body, depth+1)
}

func checkCall(p *analysis.Pass, call *ast.CallExpr, fresh map[*types.Var]bool) {
	// Conversions: flag value-to-interface boxing.
	if tv, ok := p.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && boxes(p, call.Args[0]) {
			p.Reportf(call.Pos(), "conversion to %s boxes a non-pointer value on the hot path", types.TypeString(tv.Type, types.RelativeTo(p.Pkg)))
		}
		return
	}

	if f := analysis.Callee(p.TypesInfo, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(), "call to fmt.%s allocates on the hot path", f.Name())
		return
	}

	// append to a fresh, un-presized slice grows geometrically from nil.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && analysis.IsBuiltin(p.TypesInfo, id, "append") {
		if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if v := analysis.LocalVar(p.TypesInfo, base); v != nil && fresh[v] {
				p.Reportf(call.Pos(), "append to %s, declared without capacity in this function; presize with make(..., 0, cap) or reuse a buffer", base.Name)
			}
		}
		return
	}

	// Interface boxing at argument positions of ordinary calls.
	sig, ok := p.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) && boxes(p, arg) {
			p.Reportf(arg.Pos(), "passing %s as %s boxes it on the hot path", types.TypeString(p.TypesInfo.TypeOf(arg), types.RelativeTo(p.Pkg)), types.TypeString(pt, types.RelativeTo(p.Pkg)))
		}
	}
}

// boxes reports whether passing e to an interface-typed slot heap-boxes
// it: its static type is concrete and not pointer-shaped (pointers,
// channels, maps, funcs, and unsafe pointers fit an interface word
// without allocating, as do nils and interfaces themselves).
func boxes(p *analysis.Pass, e ast.Expr) bool {
	tv, ok := p.TypesInfo.Types[e]
	if !ok || tv.IsNil() || tv.Value != nil {
		return false
	}
	t := tv.Type
	if types.IsInterface(t) {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	return true
}

func isString(p *analysis.Pass, e ast.Expr) bool {
	t := p.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringConcat reports a + of string type that the compiler cannot
// constant-fold.
func isStringConcat(p *analysis.Pass, n *ast.BinaryExpr) bool {
	if tv, ok := p.TypesInfo.Types[n]; ok && tv.Value != nil {
		return false
	}
	return isString(p, n.X)
}

// freshSlices collects local slice variables declared in fn without any
// capacity — `var s []T`, `s := []T{}`, `s := make([]T, n)` — the shapes
// whose appends reallocate as they grow.
func freshSlices(p *analysis.Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	fresh := map[*types.Var]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if v := analysis.LocalVar(p.TypesInfo, id); v != nil && unpresized(p, n.Rhs[i], v) {
					fresh[v] = true
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, name := range n.Names {
					if v := analysis.LocalVar(p.TypesInfo, name); v != nil {
						if _, ok := v.Type().Underlying().(*types.Slice); ok {
							fresh[v] = true
						}
					}
				}
			}
		}
		return true
	})
	return fresh
}

// unpresized reports whether rhs initializes v as a slice with no spare
// capacity: an empty slice literal or a two-argument make.
func unpresized(p *analysis.Pass, rhs ast.Expr, v *types.Var) bool {
	if _, ok := v.Type().Underlying().(*types.Slice); !ok {
		return false
	}
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return len(rhs.Elts) == 0
	case *ast.CallExpr:
		if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && analysis.IsBuiltin(p.TypesInfo, id, "make") {
			return len(rhs.Args) == 2
		}
	}
	return false
}
