package hotalloc_test

import (
	"testing"

	"mlbs/internal/analysis/analysistest"
	"mlbs/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "../testdata", hotalloc.Analyzer, "hotalloc/a")
}
