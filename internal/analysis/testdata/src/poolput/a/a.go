// Package a exercises poolput: a Get must be matched by a Put on every
// path out of the acquiring scope, escapes need //mlbs:poolowner, and the
// provable pairings stay silent.
package a

import "mlbs/internal/bitset"

type holder struct {
	pool *bitset.Pool
	mask bitset.Set
}

func paired(p *bitset.Pool) int {
	s := p.Get(64)
	n := s.Capacity()
	p.Put(s)
	return n
}

func deferred(p *bitset.Pool, fail bool) error {
	s := p.Get(64)
	defer p.Put(s)
	if fail {
		return errFail
	}
	_ = s.Capacity()
	return nil
}

func branches(p *bitset.Pool, big bool) {
	s := p.Get(64)
	if big {
		s.Clear()
		p.Put(s)
	} else {
		p.Put(s)
	}
}

func leakyReturn(p *bitset.Pool, fail bool) error {
	s := p.Get(64) // want `s is not Put on the path exiting at line \d+`
	if fail {
		return errFail
	}
	p.Put(s)
	return nil
}

func leakyScope(p *bitset.Pool) {
	s := p.Get(64) // want `s is not Put before its scope ends`
	s.Clear()
}

func escapes(p *bitset.Pool) bitset.Set {
	s := p.GetCopy(nil)
	return s // want `pooled bitset s escapes`
}

// owner keeps the mask alive in its struct; the annotation declares the
// transfer of the Put obligation.
//
//mlbs:poolowner -- the holder Puts the mask in drop
func (h *holder) owner() {
	h.mask = h.pool.Get(64)
}

func (h *holder) drop() {
	h.pool.Put(h.mask)
	h.mask = nil
}

func appended(p *bitset.Pool, all []bitset.Set) []bitset.Set {
	s := p.Get(64)
	return append(all, s) // want `pooled bitset s escapes`
}

func unbound(p *bitset.Pool) {
	consume(p.Get(64)) // want `pooled bitset escapes unbound without a matching Put`
}

func consume(s bitset.Set) { _ = s.Capacity() }

var errFail = errConst("fail")

type errConst string

func (e errConst) Error() string { return string(e) }
