// Package a exercises ctxspan in an opted-in package: root contexts past
// the handler boundary fire, unpaired spans fire, and the provable
// pairings, the ctxroot hatch, and the allow suppression stay silent.
//
//mlbs:requestpath
package a

import (
	"context"

	"mlbs/internal/obs"
)

func handler(ctx context.Context) context.Context {
	_ = context.Background() // want `context.Background mints a root context past the handler boundary`
	_ = context.TODO()       // want `context.TODO mints a root context past the handler boundary`
	return ctx
}

// shutdown owns a process-lifetime context by design.
//
//mlbs:ctxroot -- the shutdown timeout outlives any request
func shutdown() context.Context {
	return context.Background()
}

func paired(tr *obs.Trace, fail bool) error {
	sp := tr.Root().Child("resolve")
	if fail {
		sp.End()
		return errFail
	}
	sp.End()
	return nil
}

func chained(tr *obs.Trace) {
	tr.Root().Child("quick").End()
}

func deferred(tr *obs.Trace) {
	sp := tr.Root().Child("whole")
	defer sp.End()
	work()
}

func leaky(tr *obs.Trace, fail bool) error {
	sp := tr.Root().Child("resolve") // want `span "resolve" sp does not End on the path exiting at line \d+`
	if fail {
		return errFail
	}
	sp.End()
	return nil
}

func escaping(tr *obs.Trace) *obs.Span {
	sp := tr.Root().Child("handoff")
	return sp // want `span "handoff" sp escapes before an End`
}

func dropped(tr *obs.Trace) {
	tr.Root().Child("orphan") // want `span "orphan" begun here never reaches End`
}

type job struct {
	sp *obs.Span
}

// stored hands its span to the job, which Ends it in finish; the allow
// line records the audited transfer.
func stored(tr *obs.Trace, j *job) {
	sp := tr.Root().Child("async")
	//mlbs:allow ctxspan -- finish Ends the span when the job drains
	j.sp = sp
	go j.finish()
}

func (j *job) finish() { j.sp.End() }

func work() {}

var errFail = errConst("fail")

type errConst string

func (e errConst) Error() string { return string(e) }
