// Package a exercises the hotalloc analyzer: every allocation-inducing
// construct inside a //mlbs:hotpath function fires, the same constructs
// in an unannotated function stay silent, and //mlbs:allow suppresses.
package a

import "fmt"

type state struct {
	buf   []int
	items []int
	n     int
}

// hot is the annotated function: each construct below must be flagged.
//
//mlbs:hotpath
func hot(s *state, name string, xs []int) {
	fmt.Println(name) // want `call to fmt.Println allocates`

	msg := "x: " + name // want `string concatenation allocates`
	msg += name         // want `string concatenation allocates`
	_ = msg

	_ = []int{1, 2, 3}          // want `slice literal allocates`
	_ = map[string]int{"a": 1}  // want `map literal allocates`
	_ = &state{n: 1}            // want `address-taken composite literal escapes`
	_ = func() int { return 1 } // want `function literal allocates a closure`

	for range xs {
		defer release(s) // want `defer inside a loop allocates`
	}

	_ = any(s.n)  // want `conversion to .* boxes a non-pointer value`
	sink(s.n)     // want `passing int as .* boxes it`
	sink(s)       // pointers fit an interface word: silent
	sink(nil)     // nil never boxes: silent
	sink("const") // constants never box: silent

	var fresh []int
	fresh = append(fresh, 1) // want `append to fresh, declared without capacity`
	empty := []int{}
	empty = append(empty, 1) // want `append to empty, declared without capacity`
	tight := make([]int, 0)
	tight = append(tight, 1) // want `append to tight, declared without capacity`
	_, _, _ = fresh, empty, tight

	grown := make([]int, 0, len(xs))
	grown = append(grown, xs...) // presized: silent
	s.buf = append(s.buf, 1)     // field-backed buffer: silent
	_ = grown
}

// hotAllowed shows the line-level escape hatch: the cold error path is
// deliberate and suppressed, so the function reports nothing.
//
//mlbs:hotpath
func hotAllowed(s *state, bad bool) error {
	if bad {
		//mlbs:allow hotalloc -- cold error path, never taken warm
		return fmt.Errorf("bad state: %d", s.n)
	}
	s.n++
	return nil
}

// cold is unannotated: the same constructs stay silent.
func cold(name string) {
	fmt.Println(name)
	_ = []int{1, 2, 3}
	_ = map[string]int{"a": 1}
	var fresh []int
	fresh = append(fresh, 1)
	_ = fresh
}

func sink(v any) { _ = v }

func release(s *state) { s.n-- }
