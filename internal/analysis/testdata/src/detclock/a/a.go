// Package a exercises detclock in an opted-in package: wall-clock reads,
// math/rand, and order-sensitive map ranges fire; the wallclock and
// orderfree escape hatches and commutative sinks stay silent.
//
//mlbs:deterministic
package a

import (
	"math/rand"
	"time"
)

func clocky() time.Duration {
	t0 := time.Now()        // want `time.Now reads the wall clock`
	d := time.Since(t0)     // want `time.Since reads the wall clock`
	_ = time.Until(t0)      // want `time.Until reads the wall clock`
	_ = time.NewTimer(d)    // want `time.NewTimer reads the wall clock`
	_ = rand.Intn(10)       // want `use of math/rand.Intn`
	_ = time.Second         // a constant, not a clock read: silent
	_ = t0.Add(time.Second) // method on a value, not package time: silent
	return d
}

// audited owns the one legitimate wall-clock read.
//
//mlbs:wallclock -- fixture's audited clock owner
func audited() time.Time {
	return time.Now()
}

func mapRanges(m map[string]int) ([]string, int) {
	var keys []string
	for k := range m { // want `range over map feeds an order-sensitive sink \(append\)`
		keys = append(keys, k)
	}
	sum := 0
	for _, v := range m { // commutative accumulation: silent
		sum += v
	}
	return keys, sum
}

// sortedLater collects map keys into a slice it re-sorts; the author
// vouches for order-independence with the directive.
//
//mlbs:orderfree -- keys are sorted before use
func sortedLater(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func sliceRange(xs []int) []int {
	var out []int
	for _, v := range xs { // slices iterate deterministically: silent
		out = append(out, v)
	}
	return out
}
