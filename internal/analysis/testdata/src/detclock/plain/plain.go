// Package plain is neither on the hardwired determinism allowlist nor
// annotated //mlbs:deterministic: detclock must stay entirely silent.
package plain

import (
	"math/rand"
	"time"
)

func free(m map[string]int) ([]string, time.Time) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	_ = rand.Intn(10)
	return keys, time.Now()
}
