// Package color sits at a hardwired-allowlist import path: detclock
// applies with no //mlbs:deterministic directive in sight.
package color

import "time"

func leak() time.Time {
	return time.Now() // want `time.Now reads the wall clock in determinism-pinned package color`
}
