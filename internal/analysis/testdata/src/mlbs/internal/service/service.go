// Package service sits at a hardwired request-path import path: ctxspan's
// root-context rule applies with no //mlbs:requestpath directive in sight.
package service

import "context"

func detached() context.Context {
	return context.Background() // want `context.Background mints a root context past the handler boundary`
}
