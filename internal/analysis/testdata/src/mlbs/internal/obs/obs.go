// Package obs is a minimal stand-in for the real mlbs/internal/obs at its
// import path: Trace, Span, and the Root/Child/End surface ctxspan's
// receiver matching resolves against.
package obs

type Trace struct {
	open int
}

func (t *Trace) Root() *Span { return &Span{t: t} }

type Span struct {
	t     *Trace
	ended bool
}

func (s *Span) Child(name string) *Span {
	s.t.open++
	return &Span{t: s.t}
}

func (s *Span) End() {
	if !s.ended {
		s.ended = true
		s.t.open--
	}
}
