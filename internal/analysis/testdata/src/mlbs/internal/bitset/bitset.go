// Package bitset is a minimal stand-in for the real mlbs/internal/bitset
// at its import path: just enough surface (Set, Pool, Get/GetCopy/Put)
// for poolput's receiver matching to resolve.
package bitset

type Set []uint64

func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

func (s Set) Capacity() int { return len(s) * 64 }

type Pool struct {
	free []Set
}

func NewPool() *Pool { return &Pool{} }

func (p *Pool) Get(n int) Set {
	if len(p.free) > 0 {
		s := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		s.Clear()
		return s
	}
	return make(Set, (n+63)/64)
}

func (p *Pool) GetCopy(src Set) Set {
	s := p.Get(src.Capacity())
	copy(s, src)
	return s
}

func (p *Pool) Put(s Set) {
	if len(s) > 0 {
		p.free = append(p.free, s)
	}
}
