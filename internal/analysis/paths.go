package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the suite's shared obligation checker: a resource acquired
// at one statement (a pooled bitset from Get, a span from Child) must be
// released (Put, End) on every path out of the acquiring scope. It is a
// syntactic all-paths walk, not a real CFG — deliberately: the repo's hot
// paths are written in the straight-line style the walk understands, and
// anything it cannot prove is reported for the author to restructure or
// annotate, which is the honest failure mode for a vet-time gate.
//
// Soundness compromises, documented so nobody trusts this beyond its
// design: paths that exit by panicking are ignored (pool leaks on panic
// are unwound with the engine that owns the pool), and goto with a label
// is treated as an unprovable exit rather than resolved.

// ReleaseResult reports one obligation check. When Released is false,
// LeakPos is the return or branch statement that exits the scope first
// without releasing, or token.NoPos when control simply falls off the end
// of the acquiring scope.
type ReleaseResult struct {
	Released bool
	LeakPos  token.Pos
}

// CheckReleased verifies that after acquire — a statement in body — every
// path to the end of the acquiring statement sequence hits a statement
// for which isRelease holds (directly, or via defer). The acquiring
// sequence is the innermost statement list containing acquire, so a Get
// inside a loop body must be matched by a Put in the same iteration.
func CheckReleased(body *ast.BlockStmt, acquire ast.Stmt, isRelease func(*ast.CallExpr) bool) ReleaseResult {
	seq := findSeq(body, acquire)
	if seq == nil {
		// Not reachable for well-formed input; fail closed.
		return ReleaseResult{Released: false, LeakPos: acquire.Pos()}
	}
	c := &releaseChecker{isRelease: isRelease}
	for i, s := range seq {
		if s == acquire {
			return c.scanSeq(seq[i+1:], 0, 0)
		}
	}
	return ReleaseResult{Released: false, LeakPos: acquire.Pos()}
}

// findSeq returns the innermost statement list under root that directly
// contains target.
func findSeq(root ast.Node, target ast.Stmt) []ast.Stmt {
	var found []ast.Stmt
	ast.Inspect(root, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for _, s := range list {
			if s == target {
				found = list
				return false
			}
		}
		return true
	})
	return found
}

type releaseChecker struct {
	isRelease func(*ast.CallExpr) bool
}

// scanSeq walks a statement sequence in order: the obligation is met by
// the first statement that releases on all paths through it, and violated
// by the first statement that can exit the scope before any release.
// loop/sw count the for/switch constructs between the acquiring sequence
// and the statements under inspection, to bind break and continue.
func (c *releaseChecker) scanSeq(stmts []ast.Stmt, loop, sw int) ReleaseResult {
	for _, s := range stmts {
		if pos, leaky := c.leakyExit(s, loop, sw); leaky {
			return ReleaseResult{Released: false, LeakPos: pos}
		}
		if c.releasesAll(s, loop, sw) {
			return ReleaseResult{Released: true}
		}
	}
	return ReleaseResult{Released: false, LeakPos: token.NoPos}
}

// releaseCall reports whether stmt is itself a releasing call or a defer
// of one (a defer releases on every subsequent exit, normal or panicking).
func (c *releaseChecker) releaseCall(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			return c.isRelease(call)
		}
	case *ast.DeferStmt:
		return c.isRelease(s.Call)
	}
	return false
}

// releasesAll reports whether executing s guarantees the release on every
// path through s.
func (c *releaseChecker) releasesAll(s ast.Stmt, loop, sw int) bool {
	switch s := s.(type) {
	case *ast.ExprStmt, *ast.DeferStmt:
		return c.releaseCall(s)
	case *ast.BlockStmt:
		return c.scanSeq(s.List, loop, sw).Released
	case *ast.LabeledStmt:
		return c.releasesAll(s.Stmt, loop, sw)
	case *ast.IfStmt:
		if s.Else == nil {
			return false
		}
		return c.scanSeq(s.Body.List, loop, sw).Released && c.releasesAll(s.Else, loop, sw)
	case *ast.SwitchStmt:
		return c.clausesRelease(s.Body, loop, sw)
	case *ast.TypeSwitchStmt:
		return c.clausesRelease(s.Body, loop, sw)
	case *ast.SelectStmt:
		return c.clausesRelease(s.Body, loop, sw)
	}
	// Loops may run zero times, so they never guarantee a release.
	return false
}

// clausesRelease reports whether every clause of a switch/select body
// releases, and (for switches) a default clause exists to cover the
// no-match path.
func (c *releaseChecker) clausesRelease(body *ast.BlockStmt, loop, sw int) bool {
	hasDefault := false
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			stmts = cl.Body
		default:
			return false
		}
		if !c.scanSeq(stmts, loop, sw+1).Released {
			return false
		}
	}
	return hasDefault
}

// leakyExit reports whether some path through s exits the acquiring scope
// (return, or break/continue past it) before a release, and where.
func (c *releaseChecker) leakyExit(s ast.Stmt, loop, sw int) (token.Pos, bool) {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return s.Pos(), true
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil || loop+sw == 0 {
				return s.Pos(), true
			}
		case token.CONTINUE:
			if s.Label != nil || loop == 0 {
				return s.Pos(), true
			}
		case token.GOTO:
			return s.Pos(), true
		}
	case *ast.BlockStmt:
		return c.leakySeq(s.List, loop, sw)
	case *ast.LabeledStmt:
		return c.leakyExit(s.Stmt, loop, sw)
	case *ast.IfStmt:
		if pos, leaky := c.leakySeq(s.Body.List, loop, sw); leaky {
			return pos, true
		}
		if s.Else != nil {
			return c.leakyExit(s.Else, loop, sw)
		}
	case *ast.ForStmt:
		return c.leakySeq(s.Body.List, loop+1, sw)
	case *ast.RangeStmt:
		return c.leakySeq(s.Body.List, loop+1, sw)
	case *ast.SwitchStmt:
		return c.leakyClauses(s.Body, loop, sw)
	case *ast.TypeSwitchStmt:
		return c.leakyClauses(s.Body, loop, sw)
	case *ast.SelectStmt:
		return c.leakyClauses(s.Body, loop, sw)
	}
	return token.NoPos, false
}

// leakySeq scans a nested sequence: a release anywhere before the exit
// clears the rest of that path.
func (c *releaseChecker) leakySeq(stmts []ast.Stmt, loop, sw int) (token.Pos, bool) {
	for _, s := range stmts {
		if c.releasesAll(s, loop, sw) {
			return token.NoPos, false
		}
		if pos, leaky := c.leakyExit(s, loop, sw); leaky {
			return pos, true
		}
	}
	return token.NoPos, false
}

func (c *releaseChecker) leakyClauses(body *ast.BlockStmt, loop, sw int) (token.Pos, bool) {
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			stmts = cl.Body
		}
		if pos, leaky := c.leakySeq(stmts, loop, sw+1); leaky {
			return pos, true
		}
	}
	return token.NoPos, false
}

// Escapes returns the first use of obj under root in an
// ownership-transferring position — its value stored (assignment
// right-hand side, composite literal element, append argument, channel
// send), aliased (address taken, re-sliced), returned, or captured by a
// function literal — or nil when obj only ever appears borrowed: as a
// call argument or receiver, an operand of an expression that consumes
// its value, or an index target.
func Escapes(info *types.Info, root ast.Node, obj types.Object) *ast.Ident {
	var esc *ast.Ident
	note := func(id *ast.Ident) {
		if esc == nil && id != nil {
			esc = id
		}
	}
	// flows returns the identifier when e's *value itself* is (or aliases)
	// obj — a bare use, possibly wrapped in parens, composite literals,
	// an address-of, or a re-slice. A call or arithmetic on obj derives a
	// new value and does not transfer ownership.
	var flows func(e ast.Expr) *ast.Ident
	flows = func(e ast.Expr) *ast.Ident {
		switch e := e.(type) {
		case *ast.Ident:
			if info.Uses[e] == obj {
				return e
			}
		case *ast.ParenExpr:
			return flows(e.X)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				return flows(e.X)
			}
		case *ast.SliceExpr:
			return flows(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				if id := flows(el); id != nil {
					return id
				}
			}
		case *ast.KeyValueExpr:
			return flows(e.Value)
		}
		return nil
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if esc != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				note(flows(rhs))
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				note(flows(v))
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				note(flows(r))
			}
		case *ast.SendStmt:
			note(flows(n.Value))
		case *ast.CallExpr:
			if fn, ok := n.Fun.(*ast.Ident); ok && IsBuiltin(info, fn, "append") {
				for _, a := range n.Args {
					note(flows(a))
				}
			} else {
				// Composite-literal arguments smuggle the value out even
				// though a bare argument is only a borrow.
				for _, a := range n.Args {
					if _, ok := ast.Unparen(a).(*ast.CompositeLit); ok {
						note(flows(a))
					}
				}
			}
		case *ast.FuncLit:
			// A capture: any use of obj inside the literal body.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if esc != nil {
					return false
				}
				if ident, ok := m.(*ast.Ident); ok && info.Uses[ident] == obj {
					esc = ident
				}
				return true
			})
			return false
		}
		return true
	})
	return esc
}
