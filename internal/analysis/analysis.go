// Package analysis is the repo's static-analysis framework: a minimal,
// dependency-free equivalent of golang.org/x/tools/go/analysis, built on
// go/ast and go/types alone so the analyzer suite compiles in environments
// where the x/tools module is unavailable. The shape mirrors the original
// deliberately — an Analyzer is a named Run function over a typed Pass —
// so the analyzers themselves read like standard vet checks and could be
// ported to the real framework by swapping this import.
//
// The suite's analyzers enforce invariants that runtime tests only catch
// when the one test exercising them happens to run: hot-path allocation
// discipline, search/improver determinism, bitset pool Get/Put pairing,
// and context/span threading. See cmd/mlb-vet for the driver that speaks
// the `go vet -vettool` protocol, and DESIGN.md §16 for the annotation
// reference.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Name doubles as the suppression
// key: a `//mlbs:allow <name>` line comment silences this analyzer's
// diagnostics on that line (see annot.go).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A Pass holds one analyzer's view of one type-checked package. Unlike
// x/tools there are no facts or cross-package results: every analyzer in
// this suite is intra-package by construction.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	annots *annotIndex
}

// NewPass assembles a pass for one analyzer over one package; report
// receives every non-suppressed diagnostic. Drivers (cmd/mlb-vet, the
// analysistest harness) construct passes; analyzers only consume them.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report:    report,
		annots:    newAnnotIndex(fset, files),
	}
}

// Reportf records a diagnostic at pos unless an `//mlbs:allow <name>`
// annotation on the same or the immediately preceding line suppresses it.
// Centralizing suppression here means no analyzer reimplements it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.annots.suppressed(p.Analyzer.Name, p.Fset.Position(pos)) {
		return
	}
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The suite's
// invariants guard production hot paths; tests are free to allocate,
// sleep, and read the clock.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// FuncAnnotated reports whether fn's doc comment carries the `//mlbs:name`
// directive.
func (p *Pass) FuncAnnotated(fn *ast.FuncDecl, name string) bool {
	return docHasDirective(fn.Doc, name)
}

// PkgAnnotated reports whether any file's package doc carries the
// `//mlbs:name` directive.
func (p *Pass) PkgAnnotated(name string) bool {
	for _, f := range p.Files {
		if docHasDirective(f.Doc, name) {
			return true
		}
	}
	return false
}

// EnclosingFunc returns the innermost function declaration containing pos,
// or nil (positions in var blocks, imports, or function literals' host
// declarations still resolve to the declaration that lexically contains
// them).
func (p *Pass) EnclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			for _, d := range f.Decls {
				if fn, ok := d.(*ast.FuncDecl); ok && fn.Pos() <= pos && pos < fn.End() {
					return fn
				}
			}
		}
	}
	return nil
}

// SortDiagnostics orders diags by file position for stable output.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
